"""Figure 9: concurrently executing joins on a cluster in a single day.

Paper: "several join instances ... are found to be concurrent hundreds to
thousands of times" within one day, broken down by physical join kind
(merge / loop / hash); reuse for these requires pipelining rather than
pre-materialization (Section 5.4).
"""

from repro.common.clock import SECONDS_PER_DAY
from repro.extensions import (
    concurrency_histogram,
    concurrent_joins,
    estimate_pipelined_sharing,
)


def one_day(repository):
    """Restrict to a single post-warmup day, as in the paper's figure."""
    return repository.window(2 * SECONDS_PER_DAY, 3 * SECONDS_PER_DAY)


def test_fig9_concurrent_joins(benchmark, baseline_report):
    day = one_day(baseline_report.repository)

    joins = benchmark.pedantic(
        lambda: concurrent_joins(day, overlap_horizon_seconds=300.0),
        rounds=1, iterations=1)

    histogram = concurrency_histogram(joins, bucket_size=2)
    print("\nFigure 9: concurrently executing joins in one simulated day")
    print(f"{'kind':<8} {'instances':>10} {'max concurrency':>16}")
    by_kind = {}
    for join in joins:
        by_kind.setdefault(join.algorithm, []).append(join.concurrency)
    for kind in ("hash", "merge", "loop"):
        counts = by_kind.get(kind, [])
        print(f"{kind:<8} {len(counts):>10} "
              f"{max(counts) if counts else 0:>16}")
    print("histogram buckets (lower edge -> count):")
    for kind, buckets in histogram.items():
        if buckets:
            print(f"  {kind}: {dict(sorted(buckets.items()))}")

    # Shape: concurrent identical joins exist (the burst pipelines), with
    # more than one physical join kind represented.
    assert joins
    assert len(by_kind) >= 2
    assert max(j.concurrency for j in joins) >= 3  # outlier-ish spikes

    sharing = estimate_pipelined_sharing(day, overlap_horizon_seconds=300.0)
    print(f"pipelined-sharing estimate: {sharing.duplicates_avoided} "
          f"duplicate executions, {sharing.work_avoided:,.0f} work units")
    assert sharing.duplicates_avoided > 0
    assert sharing.work_avoided > 0
