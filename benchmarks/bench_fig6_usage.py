"""Figure 6a: cumulative views built and reused over the window.

Paper: ~58k views created, reused ~350k times over two months -- "much
more views are reused than created every day", with a periodic (daily)
creation/reuse pattern after onboarding, each view reused ~6x on average.
"""


def test_fig6a_views_built_vs_reused(benchmark, enabled_report):
    def series():
        built = enabled_report.cumulative_daily("views_built")
        reused = enabled_report.cumulative_daily("views_reused")
        return built, reused

    built, reused = benchmark.pedantic(series, rounds=1, iterations=1)

    print("\nFigure 6a: cumulative views built vs reused")
    print(f"{'day':>4} {'built':>10} {'reused':>10}")
    reused_by_day = dict(reused)
    for day, built_count in built:
        print(f"{day:>4} {built_count:>10.0f} "
              f"{reused_by_day.get(day, 0.0):>10.0f}")

    total_built = built[-1][1]
    total_reused = reused[-1][1]
    # Shape: reuse dominates creation, roughly the paper's ~6x.
    assert total_reused > total_built
    assert 2.0 < total_reused / max(1.0, total_built) < 20.0
    # Periodic pattern: views are built on every post-warmup day (daily
    # bulk updates force just-in-time re-materialization).
    daily_built = {day: value for day, value in built}
    deltas = [daily_built[d] - daily_built.get(d - 1, 0.0)
              for d in sorted(daily_built) if d >= 1]
    assert all(delta > 0 for delta in deltas[1:])
