"""Figure 7b: cumulative input size read, baseline vs CloudViews.

Paper: ~36% smaller inputs -- "quite often the input datasets are
filtered, selectively joined, or aggregated before they are materialized
as common subexpressions, which end up being much smaller than the
initial input sizes."
"""

from series_util import (
    assert_cumulative_monotone,
    final_improvement,
    paired_series,
    print_series,
)


def test_fig7b_cumulative_input(benchmark, enabled_report, baseline_report):
    rows = benchmark.pedantic(
        lambda: paired_series(enabled_report, baseline_report, "input_bytes"),
        rounds=1, iterations=1)
    print_series("Figure 7b: cumulative input size", "bytes", rows)
    assert_cumulative_monotone(rows)
    improvement = final_improvement(rows)
    print(f"cumulative input improvement: {improvement:.1f}% (paper: 36%)")
    assert 15.0 < improvement < 60.0

    # Mechanism check: reusing jobs read a *smaller* stored input (the
    # view) instead of the raw streams, never zero input.
    reusers = [t for t in enabled_report.telemetry if t.views_reused > 0]
    assert reusers
    assert all(t.input_bytes > 0 for t in reusers)
