"""Figure 8: opportunities for more generalized views.

Paper: "the x-axis shows the subexpressions that join the same sets of
inputs, and the y-axis shows their corresponding frequency ... we see lots
of generalized subexpressions with frequencies on the order of 10s to
100s."  These are joins that differ in projections/selections/group-bys
but could be served by one merged view plus containment rewrites.
"""

from repro.extensions import ContainmentChecker, join_set_opportunities
from repro.plan.expressions import BinaryOp, ColumnRef, Literal


def test_fig8_generalized_view_opportunities(benchmark, enabled_report):
    opportunities = benchmark.pedantic(
        lambda: join_set_opportunities(enabled_report.repository),
        rounds=1, iterations=1)

    print("\nFigure 8: subexpressions joining the same input sets")
    print(f"{'join inputs':<40} {'freq':>6} {'variants':>9} {'gain':>6}")
    for opp in opportunities[:12]:
        inputs = " JOIN ".join(opp.inputs)
        print(f"{inputs:<40} {opp.occurrences:>6} "
              f"{opp.distinct_variants:>9} {opp.generalization_gain:>6}")

    assert opportunities
    top = opportunities[0]
    # Shape: the hottest join-set repeats on the order of 10s-100s ...
    assert top.occurrences >= 10
    # ... across multiple syntactic variants, i.e. a single generalized
    # view could cover strictly more than exact matching does.
    assert top.distinct_variants >= 2
    assert top.generalization_gain > 0
    # Several distinct join-sets carry opportunity, not just one.
    assert sum(1 for o in opportunities if o.occurrences >= 5) >= 2


def test_fig8_containment_prototype(benchmark):
    """The Section-5.3 rewrite the generalized views would rely on."""
    checker = ContainmentChecker()

    def pred(op, value):
        return BinaryOp(op, ColumnRef("CustomerId"), Literal(value))

    def check_pairs():
        outcomes = []
        for view_val in range(0, 20, 2):
            for query_val in range(0, 20, 3):
                outcomes.append(checker.contains(pred(">", view_val),
                                                 pred(">", query_val)))
        return outcomes

    outcomes = benchmark.pedantic(check_pairs, rounds=1, iterations=1)
    assert any(outcomes) and not all(outcomes)
    # The paper's own example.
    assert checker.contains(pred(">", 5), pred(">", 6))
    assert not checker.contains(pred(">", 6), pred(">", 5))
