"""Figure 6d: cumulative bonus (opportunistic) processing time.

Paper: ~45% reduction -- "by sharing common computations and not
re-executing them with a lot of variance each time, CloudViews can reduce
the reliance on bonus processing and hence improve job predictability."
"""

from series_util import (
    assert_cumulative_monotone,
    final_improvement,
    paired_series,
    print_series,
)


def test_fig6d_cumulative_bonus(benchmark, enabled_report, baseline_report):
    rows = benchmark.pedantic(
        lambda: paired_series(enabled_report, baseline_report,
                              "bonus_processing_time"),
        rounds=1, iterations=1)
    print_series("Figure 6d: cumulative bonus processing", "container-s", rows)
    assert_cumulative_monotone(rows)
    improvement = final_improvement(rows)
    print(f"cumulative bonus improvement: {improvement:.1f}% (paper: 45%)")
    assert improvement > 15.0

    # Shape: the bonus-time reduction is at least as strong as the latency
    # reduction (in the paper it is the largest time-metric gain).
    latency_rows = paired_series(enabled_report, baseline_report, "latency")
    assert improvement > final_improvement(latency_rows) - 10.0
