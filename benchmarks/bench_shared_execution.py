"""Section 5.4 prototype: pipelined sharing across concurrent queries.

The paper leaves concurrent-query reuse as future work ("intermediate
results may be directly pipelined").  This bench runs a burst of
concurrently-submitted jobs -- which ordinary CloudViews cannot help
(Section 4, schedule-aware views) -- through the shared batch executor
and measures the work the pipelining recovers.
"""

from repro.api import Session
from repro.catalog import schema_of
from repro.extensions import SharedBatchExecutor

#: A burst pipeline: one team's concurrent dashboard refresh.
BURST = [
    "SELECT n, SUM(v) AS s FROM T JOIN D WHERE v > 10 GROUP BY n",
    "SELECT n, COUNT(*) AS c FROM T JOIN D WHERE v > 10 GROUP BY n",
    "SELECT n, AVG(v) AS a FROM T JOIN D WHERE v > 10 GROUP BY n",
    "SELECT n, MAX(v) AS m FROM T JOIN D WHERE v > 10 GROUP BY n",
    "SELECT k, SUM(v) AS s FROM T WHERE v > 10 GROUP BY k",
    "SELECT k, COUNT(*) AS c FROM T WHERE v > 50 GROUP BY k",
]


def make_session():
    session = Session()
    session.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 8, v=float(i % 173)) for i in range(2000)])
    session.register_table(
        schema_of("D", [("k", "int"), ("n", "str")]),
        [dict(k=i, n=f"team-{i}") for i in range(8)])
    return session


def run_flow():
    session = make_session()
    engine = session.engine
    compiled = [engine.compile(sql, reuse_enabled=False) for sql in BURST]

    # Isolated execution (what the cluster does today for bursts).
    isolated_work = 0.0
    isolated_results = []
    for job in compiled:
        run = engine.execute(job, record_history=False)
        isolated_work += sum(s.rows_in + s.rows_out
                             for _, s in run.result.node_stats)
        isolated_results.append(run.rows)

    # Shared batch execution.
    batch = SharedBatchExecutor(engine)
    results, stats = batch.execute_batch(compiled)
    session.close()
    return isolated_work, isolated_results, results, stats


def test_shared_execution_recovers_burst_work(benchmark):
    isolated_work, isolated_results, results, stats = benchmark.pedantic(
        run_flow, rounds=1, iterations=1)

    saved = (isolated_work - stats.work_computed) / isolated_work * 100
    print("\nSection 5.4: pipelined sharing in a concurrent burst")
    print(f"burst jobs:            {stats.jobs}")
    print(f"isolated work:         {isolated_work:,.0f} units")
    print(f"shared-batch work:     {stats.work_computed:,.0f} units")
    print(f"work saved:            {saved:.1f}%")
    print(f"fragments shared:      {stats.fragments_shared} "
          f"(of {stats.fragments_published} published)")
    print(f"sharing fraction:      {stats.sharing_fraction:.1%}")

    # Shape: a concurrent burst over one hot fragment recovers a large
    # share of its work -- the opportunity Figure 9 quantifies.
    assert saved > 30.0
    assert stats.fragments_shared >= 4
    # Correctness: batch answers match isolated answers exactly.
    for shared, isolated in zip(results, isolated_results):
        assert sorted(map(repr, shared.rows)) == sorted(map(repr, isolated))
