"""Ablation: view-selection algorithms (greedy vs per-VC vs BigSubs).

DESIGN.md calls out "scalable view selection" as a key design decision:
CloudViews runs a BigSubs-style label propagation rather than plain greedy
packing because greedy ignores *nesting* -- it happily selects a candidate
and its own ancestor, wasting builds on views whose consumers read the
bigger view instead.
"""

from repro.core import SimulationConfig, WorkloadSimulation
from repro.selection import SelectionPolicy
from repro.workload import generate_workload

DAYS = 4
ALGORITHMS = ("greedy", "per_vc", "bigsubs")


def run_all():
    results = {}
    for algorithm in ALGORITHMS:
        workload = generate_workload(seed=7, virtual_clusters=3,
                                     templates_per_vc=12)
        config = SimulationConfig(
            days=DAYS, cloudviews_enabled=True,
            selection_algorithm=algorithm,
            policy=SelectionPolicy(storage_budget_bytes=50_000_000,
                                   materialization_lag_seconds=150.0,
                                   min_reuses_per_epoch=2.0))
        results[algorithm] = WorkloadSimulation(workload, config).run()
    baseline_config = SimulationConfig(days=DAYS, cloudviews_enabled=False)
    results["baseline"] = WorkloadSimulation(
        generate_workload(seed=7, virtual_clusters=3, templates_per_vc=12),
        baseline_config).run()
    return results


def test_ablation_selection_algorithms(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    baseline_processing = results["baseline"].total("processing_time")

    print("\nAblation: selection algorithm")
    print(f"{'algorithm':<10} {'built':>6} {'reused':>7} {'ratio':>6} "
          f"{'processing gain':>16}")
    stats = {}
    for algorithm in ALGORITHMS:
        report = results[algorithm]
        ratio = report.views_reused / max(1, report.views_created)
        gain = (baseline_processing - report.total("processing_time")) \
            / baseline_processing * 100
        stats[algorithm] = (ratio, gain, report.views_created)
        print(f"{algorithm:<10} {report.views_created:>6} "
              f"{report.views_reused:>7} {ratio:>6.2f} {gain:>15.1f}%")

    # Every algorithm produces reuse and a real processing gain.
    for algorithm, (ratio, gain, created) in stats.items():
        assert created > 0, algorithm
        assert gain > 5.0, algorithm
    # BigSubs' interaction-awareness yields at least as good a
    # reuse-per-build ratio as plain greedy.
    assert stats["bigsubs"][0] >= stats["greedy"][0] - 0.25
