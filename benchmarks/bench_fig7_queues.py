"""Figure 7d: cumulative queue lengths, baseline vs CloudViews.

Paper: ~13% shorter queues -- "computation reuse can even help reduce the
queue length due to less computations being done by each job which causes
them to finish faster" -- the smallest of the Table-1 improvements.
"""

from series_util import (
    assert_cumulative_monotone,
    final_improvement,
    paired_series,
    print_series,
)


def test_fig7d_cumulative_queue_lengths(benchmark, enabled_report,
                                        baseline_report):
    rows = benchmark.pedantic(
        lambda: paired_series(enabled_report, baseline_report,
                              "queue_length_at_submit"),
        rounds=1, iterations=1)
    print_series("Figure 7d: cumulative queue lengths", "jobs", rows)
    assert_cumulative_monotone(rows)
    improvement = final_improvement(rows)
    print(f"cumulative queue improvement: {improvement:.1f}% (paper: 13%)")
    assert improvement > 0.0

    # Shape: the queue-length gain is the smallest of the Table-1 metrics.
    for metric in ("latency", "processing_time", "bonus_processing_time",
                   "containers", "input_bytes", "data_read_bytes"):
        other = final_improvement(
            paired_series(enabled_report, baseline_report, metric))
        assert improvement <= other + 1e-9, metric
