"""Ablation: schedule-aware view selection (Section 4).

"Jobs that get scheduled (and thus compiled) at the same time cannot
benefit from such reuse ... we modified our view selection algorithms to
only consider subexpressions that could finish materializing before the
start of other consuming jobs."  Without the lag filter, selection wastes
materializations on burst-only candidates that nobody can ever reuse.
"""

from collections import Counter

from repro.core import SimulationConfig, WorkloadSimulation
from repro.selection import SelectionPolicy
from repro.workload import generate_workload

DAYS = 4


def run_pair():
    results = {}
    for label, lag in (("naive", 0.0), ("schedule-aware", 150.0)):
        workload = generate_workload(seed=7, virtual_clusters=3,
                                     templates_per_vc=12,
                                     burst_fraction=0.5)
        config = SimulationConfig(
            days=DAYS, cloudviews_enabled=True,
            policy=SelectionPolicy(storage_budget_bytes=50_000_000,
                                   materialization_lag_seconds=lag,
                                   min_reuses_per_epoch=1.0))
        simulation = WorkloadSimulation(workload, config)
        report = simulation.run()
        unused = sum(1 for v in simulation.engine.view_store.views()
                     if v.sealed and v.reuse_count == 0)
        results[label] = (report, unused)
    return results


def test_ablation_schedule_awareness(benchmark):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    print("\nAblation: schedule-aware selection (burst-heavy workload)")
    print(f"{'policy':<16} {'built':>6} {'reused':>7} {'ratio':>6} "
          f"{'unused views':>13} {'schedule-rejected':>18}")
    for label, (report, unused) in results.items():
        ratio = report.views_reused / max(1, report.views_created)
        rejected = sum(s.rejected_by_schedule for s in report.selections)
        print(f"{label:<16} {report.views_created:>6} "
              f"{report.views_reused:>7} {ratio:>6.2f} {unused:>13} "
              f"{rejected:>18}")

    naive_report, naive_unused = results["naive"]
    aware_report, aware_unused = results["schedule-aware"]
    naive_ratio = naive_report.views_reused / max(1, naive_report.views_created)
    aware_ratio = aware_report.views_reused / max(1, aware_report.views_created)
    # The lag filter actually rejected candidates...
    assert sum(s.rejected_by_schedule for s in aware_report.selections) > 0
    # ...and never makes the reuse-per-build ratio worse.
    assert aware_ratio >= naive_ratio
    # Wasted materializations (never-reused views) do not increase.
    assert aware_unused <= naive_unused
