"""Concurrent-frontend throughput smoke: jobs/sec across worker counts.

First datapoint of the scaling trajectory ("heavy traffic" north star):
the same cooking-workload window pushed through the wave-parallel
scheduler at increasing worker counts.  Emits a JSON line per worker
count so CI can archive the series, and asserts the worker-count
invariance bar (identical catalog digest and reuse counts at every N).
"""

from __future__ import annotations

import json

from repro.scheduler import ConcurrentSimulation, ConcurrentSimulationConfig
from repro.workload.generator import generate_workload

DAYS = 2
SEED = 7
WORKER_COUNTS = (1, 2, 8)


def run_with_workers(workers: int):
    workload = generate_workload(seed=SEED)
    simulation = ConcurrentSimulation(
        workload, ConcurrentSimulationConfig(days=DAYS, workers=workers))
    return simulation.run()


def test_concurrent_throughput_smoke(benchmark):
    reports = {}
    for workers in WORKER_COUNTS[:-1]:
        reports[workers] = run_with_workers(workers)
    # The highest worker count goes through the benchmark timer.
    reports[WORKER_COUNTS[-1]] = benchmark.pedantic(
        lambda: run_with_workers(WORKER_COUNTS[-1]),
        rounds=1, iterations=1)

    print("\nconcurrent throughput (cooking workload, "
          f"{DAYS} days, seed {SEED})")
    for workers in WORKER_COUNTS:
        print(json.dumps(reports[workers].summary()))

    digests = {r.catalog_digest for r in reports.values()}
    reuse = {(r.views_created, r.views_reused) for r in reports.values()}
    assert len(digests) == 1, "catalog must not depend on worker count"
    assert len(reuse) == 1, "reuse counts must not depend on worker count"
    assert all(r.failures == 0 for r in reports.values())
    assert all(r.jobs_per_second > 0 for r in reports.values())
