"""GC janitor cost: sweep latency and eviction throughput at scale.

The janitor runs inside the serving path's host process, so a sweep over
a large catalog has to stay cheap even when nothing is collectable (the
common case: every wake-up scans the whole catalog and finds little to
do).  This benchmark populates a catalog with a few thousand sealed
views, then times three characteristic sweeps — a no-op pass over a
fully live catalog, an expiry pass that collects half of it, and a
budget pass that evicts by cost/benefit score — and emits the latencies
and eviction counts as JSON for trend tracking.
"""

import json
import time

from repro.api import Session
from repro.engine.engine import EngineConfig
from repro.lifecycle import LifecycleConfig

VIEWS = 2_000
TTL_SECONDS = 1_000.0


def populate(engine, count):
    store = engine.view_store
    for i in range(count):
        signature = f"view-{i:05d}"
        # First half created early (expires first), varied sizes and
        # reuse so the budget pass has a real score distribution.
        created = 0.0 if i < count // 2 else 500.0
        store.begin_materialize(signature, f"views/{signature}", ("a",),
                                "vc1", now=created)
        store.seal(signature, now=created, row_count=10,
                   size_bytes=100 + (i % 7) * 50)
        engine.store.put(f"views/{signature}", [{"a": 1}])
        for _ in range(i % 5):
            store.record_reuse(signature)


def timed_sweep(manager, now):
    started = time.perf_counter()
    result = manager.sweep(now=now)
    return time.perf_counter() - started, result


def run_gc():
    session = Session(
        engine_config=EngineConfig(view_ttl_seconds=TTL_SECONDS),
        lifecycle=LifecycleConfig())
    engine, manager = session.engine, session.lifecycle
    populate(engine, VIEWS)

    # Pass 1: everything still live -- the steady-state wake-up cost.
    noop_seconds, noop = timed_sweep(manager, now=900.0)

    # Pass 2: the early half has aged past its TTL.
    expiry_seconds, expiry = timed_sweep(manager, now=1_100.0)

    # Pass 3: score-ranked eviction down to half the remaining bytes.
    manager.config.storage_budget_bytes = \
        engine.view_store.storage_in_use(1_100.0) // 2
    budget_seconds, budget = timed_sweep(manager, now=1_100.0)

    session.close()
    return {
        "catalog_views": VIEWS,
        "noop_sweep_seconds": noop_seconds,
        "expiry_sweep_seconds": expiry_seconds,
        "budget_sweep_seconds": budget_seconds,
        "expired_collected": expiry.expired + expiry.removed,
        "budget_evicted": budget.budget_evicted,
        "budget_reclaimed_bytes": budget.reclaimed_bytes,
        "noop_collected": noop.total_collected,
    }


def test_lifecycle_gc_sweep(benchmark):
    result = benchmark.pedantic(run_gc, rounds=1, iterations=1)

    print(f"\nGC sweep latency ({result['catalog_views']:,} views)")
    print(f"{'no-op sweep':<26}{result['noop_sweep_seconds'] * 1e3:>10.2f} ms")
    print(f"{'expiry sweep':<26}"
          f"{result['expiry_sweep_seconds'] * 1e3:>10.2f} ms")
    print(f"{'budget sweep':<26}"
          f"{result['budget_sweep_seconds'] * 1e3:>10.2f} ms")
    print(f"{'expired collected':<26}{result['expired_collected']:>10,}")
    print(f"{'budget evicted':<26}{result['budget_evicted']:>10,}")
    print(json.dumps(result))

    assert result["noop_collected"] == 0
    assert result["expired_collected"] == VIEWS // 2
    assert result["budget_evicted"] > 0
    # A sweep must stay interactive even at catalog scale.
    assert result["expiry_sweep_seconds"] < 5.0
