"""Table 1: Production Impact Summary.

Paper numbers (two-month production window):

    Jobs 257,068 / Pipelines 619 / Virtual Clusters 21 / Runtimes 12
    Views Created 58,060 / Views Used 344,966 (~5.9 reuses per view)
    Latency Improvement               33.97%
    Processing Time Improvement       38.96%
    Bonus Processing Time Improvement 45.01%
    Containers Count Improvement      35.76%
    Input Size Improvement            36.38%
    Data Read Improvement             38.84%
    Queuing Length Improvement        12.87%

We reproduce the *shape* at simulator scale: every metric improves, the
bonus-time gain is the largest of the time metrics, the queuing-length
gain is the smallest overall, and views are reused several times each.
"""

from repro.telemetry import TABLE1_METRICS, compare_telemetry
from repro.workload import pipeline_summary


def test_table1_production_impact(benchmark, enabled_report, baseline_report):
    def build_table():
        return compare_telemetry(baseline_report.telemetry,
                                 enabled_report.telemetry)

    report = benchmark.pedantic(build_table, rounds=1, iterations=1)

    summary = pipeline_summary(enabled_report.repository)
    pipelines = len({j.pipeline_id for j in enabled_report.repository.jobs
                     if j.pipeline_id})
    created = enabled_report.views_created
    reused = enabled_report.views_reused

    print("\nTable 1: Production Impact Summary (measured)")
    print(f"{'Jobs':<42}{summary['jobs']:>12,}")
    print(f"{'Pipelines':<42}{pipelines:>12,}")
    print(f"{'Virtual Clusters':<42}{summary['virtual_clusters']:>12,}")
    print(f"{'Runtime Versions':<42}{summary['runtime_versions']:>12,}")
    print(f"{'Views Created':<42}{created:>12,}")
    print(f"{'Views Used':<42}{reused:>12,}")
    print(f"{'Reuses per view':<42}{reused / max(1, created):>12.2f}")
    for label, value in report.rows():
        print(f"{label:<42}{value:>11.2f}%")
    print(f"{'Median per-job latency improvement':<42}"
          f"{report.median_latency_improvement * 100:>11.2f}%")

    improvements = {metric: report.improvement_percent(metric)
                    for metric, _ in TABLE1_METRICS}
    # Shape: every metric improves.
    for metric, value in improvements.items():
        assert value > 0, f"{metric} did not improve: {value:.1f}%"
    # Shape: bonus time gains the most of the time metrics; queuing the
    # least overall (paper: 45% > 39% > 34% > ... > 13%).
    assert improvements["bonus_processing_time"] > improvements["latency"]
    assert improvements["queue_length_at_submit"] == min(improvements.values())
    # Reuse ratio in the paper's ballpark (~6 reuses per view).
    assert 2.0 < reused / max(1, created) < 20.0
    assert report.median_latency_improvement >= 0.0
