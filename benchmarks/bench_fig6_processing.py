"""Figure 6c: daily cumulative processing time, baseline vs CloudViews.

Paper: ~39% improvement, and "in contrast to latency, we can see more
distinct change in processing time" -- savings do not depend on the
critical path, so every reused fragment contributes.
"""

from series_util import (
    assert_cumulative_monotone,
    final_improvement,
    paired_series,
    print_series,
)


def test_fig6c_cumulative_processing(benchmark, enabled_report,
                                     baseline_report):
    rows = benchmark.pedantic(
        lambda: paired_series(enabled_report, baseline_report,
                              "processing_time"),
        rounds=1, iterations=1)
    print_series("Figure 6c: cumulative processing time", "container-s", rows)
    assert_cumulative_monotone(rows)
    improvement = final_improvement(rows)
    print(f"cumulative processing improvement: {improvement:.1f}% (paper: 39%)")
    assert 15.0 < improvement < 65.0

    # Post-warmup, the gain is consistently visible every single day.
    previous = (0.0, 0.0)
    for day, base, cv in rows:
        day_base, day_cv = base - previous[0], cv - previous[1]
        previous = (base, cv)
        if day >= 2 and day_base > 0:
            assert day_cv < day_base
