"""Flight-recorder overhead: instrumented vs no-op recorder runs.

The recorder rides every hot path (compile, insights fetch, matching,
buildout, scheduling), so its cost has to stay negligible relative to the
simulation itself — otherwise nobody leaves it on in the A/B harness.
This benchmark times a short deployment window twice, once with a real
:class:`FlightRecorder` and once with the default no-op recorder, and
reports the overhead ratio alongside the volume of signals captured.
"""

import time

from repro.core import SimulationConfig, WorkloadSimulation
from repro.obs import FlightRecorder
from repro.workload import generate_workload

DAYS = 3


def run_once(recorder=None):
    workload = generate_workload(seed=7, virtual_clusters=2,
                                 templates_per_vc=10)
    config = SimulationConfig(days=DAYS, cloudviews_enabled=True)
    started = time.perf_counter()
    report = WorkloadSimulation(workload, config, recorder=recorder).run()
    return time.perf_counter() - started, report


def run_pair():
    noop_seconds, noop_report = run_once(recorder=None)
    recorder = FlightRecorder()
    recorded_seconds, recorded_report = run_once(recorder=recorder)
    assert len(recorded_report.telemetry) == len(noop_report.telemetry)
    return {
        "noop_seconds": noop_seconds,
        "recorded_seconds": recorded_seconds,
        "spans": len(recorder.tracer),
        "events": len(recorder.events),
        "counters": len(recorder.metrics.counters),
    }


def test_obs_overhead(benchmark):
    result = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    ratio = result["recorded_seconds"] / max(result["noop_seconds"], 1e-9)
    print(f"\nFlight-recorder overhead ({DAYS}-day window)")
    print(f"{'no-op recorder':<24}{result['noop_seconds']:>10.3f}s")
    print(f"{'flight recorder':<24}{result['recorded_seconds']:>10.3f}s")
    print(f"{'overhead ratio':<24}{ratio:>10.2f}x")
    print(f"{'spans captured':<24}{result['spans']:>10,}")
    print(f"{'events captured':<24}{result['events']:>10,}")
    print(f"{'counter series':<24}{result['counters']:>10,}")

    # Generous bound: instrumentation must not dominate the simulation.
    assert ratio < 3.0
