"""Fault-seam overhead: injection disabled must cost nothing measurable.

The fault seams ride the hottest paths in the system — every backend
execute, every view scan and materialization, every WAL append, every
insights round trip.  Production (and the fault-free CI lanes) run with
the inert :class:`NullFaultRuntime`, whose ``fire``/``check`` are a
single attribute lookup plus an immediate return.  This benchmark times
the cooking workload three ways:

* ``baseline`` — no fault plumbing touched (the inert default);
* ``null`` — an explicitly installed ``NullFaultRuntime`` (same code
  path, proves installation itself is free);
* ``armed_idle`` — a real :class:`FaultRuntime` whose one spec sits so
  far in the future (``after=10**9`` arrivals) that it never fires, so
  every arrival on the busiest seam pays the full bookkeeping (mutex,
  arrival counter, spec liveness check) without a single injection.

The disabled paths must be statistically indistinguishable from the
baseline; even the armed-idle runtime must stay within a small constant
factor.
"""

import time

from repro.faults import FaultPlan, FaultRuntime, FaultSpec, NULL_FAULTS
from repro.faults.chaos import _run_workload

DAYS = 2


def run_once(faults):
    started = time.perf_counter()
    outcome = _run_workload("memory", days=DAYS, faults=faults)
    assert not outcome.failures
    return time.perf_counter() - started, outcome


def run_trio():
    baseline_seconds, baseline = run_once(None)
    null_seconds, null_outcome = run_once(NULL_FAULTS)
    armed = FaultRuntime(FaultPlan(
        specs=(FaultSpec("backend.execute", "transient", after=10**9),),
        seed=0, name="armed-idle"))
    armed_seconds, armed_outcome = run_once(armed)
    # Same work in all three configurations, or the timing is meaningless.
    assert null_outcome.rows == baseline.rows
    assert armed_outcome.rows == baseline.rows
    assert armed.fired_total == 0
    return {
        "baseline_seconds": baseline_seconds,
        "null_seconds": null_seconds,
        "armed_seconds": armed_seconds,
        "jobs": baseline.jobs,
        "armed_arrivals": sum(armed.stats()["arrivals"].values()),
    }


def test_fault_overhead(benchmark):
    result = benchmark.pedantic(run_trio, rounds=1, iterations=1)

    null_ratio = (result["null_seconds"]
                  / max(result["baseline_seconds"], 1e-9))
    armed_ratio = (result["armed_seconds"]
                   / max(result["baseline_seconds"], 1e-9))
    print(f"\nFault-seam overhead ({DAYS}-day cooking window, "
          f"{result['jobs']} jobs)")
    print(f"{'no fault plumbing':<24}{result['baseline_seconds']:>10.3f}s")
    print(f"{'null runtime':<24}{result['null_seconds']:>10.3f}s"
          f"  ({null_ratio:.2f}x)")
    print(f"{'armed, never fires':<24}{result['armed_seconds']:>10.3f}s"
          f"  ({armed_ratio:.2f}x)")
    print(f"{'armed arrivals':<24}{result['armed_arrivals']:>10,}")

    # Disabled injection must be free; a short noisy window still gets a
    # generous ceiling rather than a flaky equality.
    assert null_ratio < 1.5
    # Arrival bookkeeping (one mutex hop per seam) must stay small.
    assert armed_ratio < 2.0
