"""Section 5.5: SparkCruise on TPC-DS.

Paper: "On TPC-DS benchmarks, SparkCruise can reduce the running time by
approximately 30%."  We replay the SparkCruise flow -- listener logs the
workload, the user schedules analysis, reuse kicks in -- over a miniature
TPC-DS suite and compare total observed work.
"""

from repro.api import Session
from repro.extensions import QueryEventListener, run_workload_analysis
from repro.selection import SelectionPolicy
from repro.workload.tpcds import TPCDS_QUERIES, install_tpcds, run_tpcds_suite


def run_flow():
    # Baseline session: reuse never enabled.
    with Session() as baseline_session:
        install_tpcds(baseline_session.engine)
        baseline = run_tpcds_suite(baseline_session.engine,
                                   reuse_enabled=False)

    # SparkCruise flow: observe, analyze, then run with reuse.
    with Session() as session:
        engine = session.engine
        install_tpcds(engine)
        listener = QueryEventListener(engine)
        observe = run_tpcds_suite(engine, reuse_enabled=False, now=0.0)
        for name, sql in TPCDS_QUERIES:
            # Feed the listener from a fresh pass so signatures are
            # recorded.
            run = engine.run_sql(sql, reuse_enabled=False, now=50.0)
            listener.on_query_end(run, now=50.0)
        run_workload_analysis(listener, SelectionPolicy(
            storage_budget_bytes=10_000_000, min_reuses_per_epoch=0.0))
        enabled = run_tpcds_suite(engine, reuse_enabled=True, now=100.0)
    return baseline, observe, enabled


def test_sparkcruise_tpcds(benchmark):
    baseline, observe, enabled = benchmark.pedantic(run_flow, rounds=1,
                                                    iterations=1)

    reduction = (baseline["work"] - enabled["work"]) / baseline["work"] * 100
    print("\nSparkCruise on mini TPC-DS")
    print(f"queries:                 {len(TPCDS_QUERIES)}")
    print(f"baseline work:           {baseline['work']:,.0f} units")
    print(f"with computation reuse:  {enabled['work']:,.0f} units")
    print(f"running-time reduction:  {reduction:.1f}% (paper: ~30%)")
    print(f"views built={enabled['built']} reused={enabled['reused']}")

    # Shape: a substantial reduction in the paper's ~30% ballpark.
    assert 15.0 < reduction < 60.0
    assert enabled["reused"] >= 4  # the shared date-window cores

    # Correctness: every query's answer is unchanged under reuse.
    for name, rows in enabled["results"].items():
        assert sorted(map(repr, rows)) == \
            sorted(map(repr, baseline["results"][name])), name
