"""Figure 7a: cumulative containers used, baseline vs CloudViews.

Paper: ~36% fewer containers -- eliminating re-computation removes the
corresponding containers, and reuse also "circumvents" SCOPE's
cardinality over-estimation (over-partitioning) by feeding accurate
statistics from materialized views into the rest of the plan.
"""

from series_util import (
    assert_cumulative_monotone,
    final_improvement,
    paired_series,
    print_series,
)


def test_fig7a_cumulative_containers(benchmark, enabled_report,
                                     baseline_report):
    rows = benchmark.pedantic(
        lambda: paired_series(enabled_report, baseline_report, "containers"),
        rounds=1, iterations=1)
    print_series("Figure 7a: cumulative containers", "containers", rows)
    assert_cumulative_monotone(rows)
    improvement = final_improvement(rows)
    print(f"cumulative containers improvement: {improvement:.1f}% (paper: 36%)")
    assert 10.0 < improvement < 60.0

    # The over-partitioning mechanism: jobs that reused views asked for
    # fewer containers than their baseline twins.
    base_by_key = {(t.virtual_cluster, round(t.submit_time, 3)): t
                   for t in baseline_report.telemetry}
    reusers = [t for t in enabled_report.telemetry if t.views_reused > 0]
    fewer = sum(1 for t in reusers
                if (m := base_by_key.get(
                    (t.virtual_cluster, round(t.submit_time, 3)))) is not None
                and t.containers < m.containers)
    assert fewer > len(reusers) * 0.5
