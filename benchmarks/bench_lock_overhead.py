"""Tracked-lock overhead: raw Lock vs TrackedLock, sanitizer off and on.

The tracked locks replaced every ``threading.Lock`` on the hot paths
(scheduler admission, insights fetch, view-store pinning), so with
``REPRO_DEBUG_CHECKS`` off they must cost essentially nothing beyond the
raw primitive -- the fast path is one attribute check in front of the
stdlib acquire.  With the sanitizer enabled the per-acquire hierarchy
and wait-for bookkeeping is the price of deadlock detection, reported
here so the debug-mode slowdown is a known number rather than a
surprise.
"""

import threading
import time

from repro.common.sync import (
    RANK_STORAGE,
    TrackedLock,
    disable_sanitizer,
    enable_sanitizer,
    sanitizer,
)

ACQUIRES = 200_000


def time_lock(lock):
    started = time.perf_counter()
    for _ in range(ACQUIRES):
        with lock:
            pass
    return time.perf_counter() - started


def run_trio():
    ambient = sanitizer()
    disable_sanitizer()
    try:
        raw_seconds = time_lock(threading.Lock())
        off_seconds = time_lock(TrackedLock("bench.off", RANK_STORAGE))
        enable_sanitizer(raise_on_violation=False)
        on_seconds = time_lock(TrackedLock("bench.on", RANK_STORAGE))
        assert sanitizer().violations == []
    finally:
        disable_sanitizer()
        if ambient is not None:
            enable_sanitizer(recorder=ambient.recorder,
                             raise_on_violation=ambient.raise_on_violation,
                             check_hierarchy=ambient.check_hierarchy,
                             detect_deadlocks=ambient.detect_deadlocks)
    return {
        "raw_seconds": raw_seconds,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
    }


def test_lock_overhead(benchmark):
    result = benchmark.pedantic(run_trio, rounds=1, iterations=1)

    per_raw = result["raw_seconds"] / ACQUIRES * 1e9
    per_off = result["off_seconds"] / ACQUIRES * 1e9
    per_on = result["on_seconds"] / ACQUIRES * 1e9
    off_ratio = result["off_seconds"] / max(result["raw_seconds"], 1e-9)
    on_ratio = result["on_seconds"] / max(result["raw_seconds"], 1e-9)
    print(f"\nLock overhead ({ACQUIRES:,} uncontended acquire/release)")
    print(f"{'threading.Lock':<28}{per_raw:>10.0f} ns/acquire")
    print(f"{'TrackedLock (checks off)':<28}{per_off:>10.0f} ns/acquire"
          f"  ({off_ratio:.2f}x raw)")
    print(f"{'TrackedLock (sanitizer on)':<28}{per_on:>10.0f} ns/acquire"
          f"  ({on_ratio:.2f}x raw)")

    # The production posture: with debug checks off, a tracked lock is a
    # thin veneer over the stdlib primitive.  Generous bound -- the fast
    # path adds one attribute test and a method-call hop, and CI machines
    # are noisy.
    assert off_ratio < 5.0
