"""Figure 6b: daily cumulative job latency, baseline vs CloudViews.

Paper: ~34% cumulative latency gain, median per-job 15%, but "latency
improvements are staggered and minimal on several days" because reuse only
helps latency when the reused fragment lies on the critical path.
"""

from series_util import (
    assert_cumulative_monotone,
    final_improvement,
    paired_series,
    print_series,
)


def test_fig6b_cumulative_latency(benchmark, enabled_report, baseline_report):
    rows = benchmark.pedantic(
        lambda: paired_series(enabled_report, baseline_report, "latency"),
        rounds=1, iterations=1)
    print_series("Figure 6b: cumulative latency", "s", rows)
    assert_cumulative_monotone(rows)
    improvement = final_improvement(rows)
    print(f"cumulative latency improvement: {improvement:.1f}% (paper: 34%)")
    assert 10.0 < improvement < 70.0

    # Staggered gains: the per-day latency gain varies across days.
    daily_gains = []
    previous = (0.0, 0.0)
    for _, base, cv in rows:
        day_base = base - previous[0]
        day_cv = cv - previous[1]
        previous = (base, cv)
        if day_base > 0:
            daily_gains.append((day_base - day_cv) / day_base)
    assert max(daily_gains) - min(daily_gains) > 0.05
