"""Figure 4: computation reuse across three analysts on shared datasets.

The paper's scenario: three analysts over Customer/Sales/Parts, all
studying the Asia segment.  Their queries look different, but their plans
share large subexpressions; CloudViews materializes the common fragments
and rewrites the later plans to scan them (Figure 4b).
"""

from repro.catalog import schema_of
from repro.core import CloudViews, MultiLevelControls
from repro.plan import ViewScan
from repro.selection import SelectionPolicy

Q1 = ("SELECT CustomerId, AVG(Price * Quantity) FROM Sales JOIN Customer "
      "WHERE MktSegment = 'Asia' GROUP BY CustomerId")
Q2 = ("SELECT Brand, AVG(Discount) FROM Sales JOIN Customer JOIN Parts "
      "WHERE MktSegment = 'Asia' GROUP BY Brand")
Q3 = ("SELECT PartType, SUM(Quantity) FROM Sales JOIN Customer JOIN Parts "
      "WHERE MktSegment = 'Asia' GROUP BY PartType")


def make_cloudviews():
    controls = MultiLevelControls()
    controls.enable_vc("analysts")
    cv = CloudViews(controls=controls,
                    policy=SelectionPolicy(min_reuses_per_epoch=0.0))
    engine = cv.engine
    engine.register_table(
        schema_of("Sales", [
            ("CustomerId", "int"), ("PartId", "int"), ("Price", "float"),
            ("Quantity", "int"), ("Discount", "float")]),
        [dict(CustomerId=i % 20, PartId=i % 8, Price=float(i % 97),
              Quantity=1 + i % 5, Discount=(i % 10) / 100.0)
         for i in range(400)])
    engine.register_table(
        schema_of("Customer", [("CustomerId", "int"), ("MktSegment", "str")]),
        [dict(CustomerId=i,
              MktSegment=["Asia", "Europe", "Americas"][i % 3])
         for i in range(20)])
    engine.register_table(
        schema_of("Parts", [("PartId", "int"), ("Brand", "str"),
                            ("PartType", "str")]),
        [dict(PartId=i, Brand=f"brand{i % 3}", PartType=f"type{i % 2}")
         for i in range(8)])
    return cv


def run_scenario():
    cv = make_cloudviews()
    # Day 0: the three analysts run their reports; CloudViews observes.
    for template, sql in (("t1", Q1), ("t2", Q2), ("t3", Q3)):
        cv.run(sql, virtual_cluster="analysts", template_id=template,
               now=0.0)
    selection = cv.analyze_and_publish()
    # Day 0 (later): the recurring reports run again over the same inputs.
    runs = [cv.run(sql, virtual_cluster="analysts", template_id=template,
                   now=100.0 + i)
            for i, (template, sql) in enumerate(
                (("t1", Q1), ("t2", Q2), ("t3", Q3)))]
    return cv, selection, runs


def test_fig4_analyst_reuse(benchmark):
    cv, selection, runs = benchmark.pedantic(run_scenario, rounds=1,
                                             iterations=1)
    r1, r2, r3 = runs

    print("\nFigure 4: three analysts, shared Asia-segment fragments")
    print(f"view selection: {selection.summary()}")
    for name, run in (("Q1 avg sales/customer", r1),
                      ("Q2 avg discount/brand", r2),
                      ("Q3 total quantity/part type", r3)):
        print(f"{name:<32} built={run.compiled.built_views} "
              f"reused={run.compiled.reused_views}")
        print(run.compiled.plan.explain())

    # The common computation was selected and materialized once...
    assert selection.selected
    assert cv.views_created >= 1
    # ...and at least the later analysts' plans were rewritten to scan it
    # (Figure 4b: CloudView boxes replace the shared subplans).
    assert r2.compiled.reused_views + r3.compiled.reused_views >= 2
    assert any(isinstance(n, ViewScan) for n in r2.compiled.plan.walk())
    assert any(isinstance(n, ViewScan) for n in r3.compiled.plan.walk())

    # Correctness: identical answers to a reuse-free engine.
    for sql, run in ((Q1, r1), (Q2, r2), (Q3, r3)):
        clean = cv.engine.run_sql(sql, reuse_enabled=False, now=200.0)
        assert sorted(map(repr, run.rows)) == sorted(map(repr, clean.rows))
