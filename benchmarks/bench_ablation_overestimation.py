"""Ablation: cardinality over-estimation and container inflation (§3.5).

"SCOPE query engine often ends up overestimating cardinalities and thus
over-partitioning the intermediate outputs, leading to many more
containers getting instantiated ... computation reuse automatically
circumvents this issue" because a ViewScan carries its *actual* row count.

We sweep the over-estimation factor on the baseline (no reuse): containers
inflate with the bias.  Then we show reuse claws the inflation back.
"""

from repro.core import SimulationConfig, WorkloadSimulation
from repro.workload import generate_workload

DAYS = 3
FACTORS = (1.0, 2.0, 4.0)


def run_sweep():
    containers = {}
    for factor in FACTORS:
        for label, enabled in (("baseline", False), ("cloudviews", True)):
            workload = generate_workload(seed=7, virtual_clusters=2,
                                         templates_per_vc=10)
            # Generous partition headroom so the bias is not clipped by
            # the per-stage cap (the paper's clusters have thousands of
            # containers to over-allocate from).
            config = SimulationConfig(days=DAYS, cloudviews_enabled=enabled,
                                      rows_per_partition=40.0,
                                      max_partitions=512,
                                      total_containers=200, vc_quota=40)
            simulation = WorkloadSimulation(workload, config)
            # The stage builder reads the engine's overestimate factor.
            simulation.engine.config.overestimate = factor
            report = simulation.run()
            containers[(label, factor)] = report.total("containers")
    return containers


def test_ablation_overestimation(benchmark):
    containers = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nAblation: cardinality over-estimation factor vs containers")
    print(f"{'factor':>7} {'baseline':>10} {'cloudviews':>11} {'saved':>7}")
    for factor in FACTORS:
        base = containers[("baseline", factor)]
        with_cv = containers[("cloudviews", factor)]
        saved = (base - with_cv) / base * 100 if base else 0.0
        print(f"{factor:>7.1f} {base:>10,.0f} {with_cv:>11,.0f} "
              f"{saved:>6.1f}%")

    # Over-estimation inflates baseline container usage monotonically.
    baseline_series = [containers[("baseline", f)] for f in FACTORS]
    assert baseline_series[0] < baseline_series[-1]
    # Reuse claws back a solid share of containers at every bias level
    # (view scans carry accurate row counts regardless of the bias).
    for factor in FACTORS:
        base = containers[("baseline", factor)]
        with_cv = containers[("cloudviews", factor)]
        assert with_cv < base
        assert (base - with_cv) / base > 0.05
