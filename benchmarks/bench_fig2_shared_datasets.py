"""Figure 2: shared data sets in five production clusters.

Paper (one-week window, five clusters): "more than half of the datasets
are shared across multiple distinct consumers.  Furthermore, several
datasets are consumed tens to hundreds of times, with few getting reused
thousands of times as well.  Cluster1 in particular sees more shared data
sets since that feeds into the Asimov platform ... 10% of the inputs on
this cluster get reused by more than 16 downstream consumers.  For other
clusters, 10% of the inputs are consumed by 7 or more downstream
consumers."
"""

from repro.workload import consumer_distribution, sharing_summary
from repro.workload.profiling import synthesize_dataset_sharing

#: Cluster1 is Asimov-fed: more consumers per stream, heavier skew.
CLUSTERS = {
    "Cluster1": dict(seed=1, streams=350, consumers=2200,
                     reads_per_consumer=4, skew=1.12),
    "Cluster2": dict(seed=2, streams=400, consumers=900,
                     reads_per_consumer=3, skew=1.05),
    "Cluster3": dict(seed=3, streams=380, consumers=850,
                     reads_per_consumer=3, skew=1.02),
    "Cluster4": dict(seed=4, streams=420, consumers=950,
                     reads_per_consumer=3, skew=1.06),
    "Cluster5": dict(seed=5, streams=360, consumers=800,
                     reads_per_consumer=3, skew=1.0),
}


def test_fig2_shared_dataset_cdf(benchmark):
    def analyze():
        results = {}
        for cluster, params in CLUSTERS.items():
            repository = synthesize_dataset_sharing(cluster, **params)
            results[cluster] = (consumer_distribution(repository),
                                sharing_summary(repository))
        return results

    results = benchmark.pedantic(analyze, rounds=1, iterations=1)

    print("\nFigure 2: distinct consumers per input stream (CDF samples)")
    fractions = [0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
    header = "".join(f"{f:>9.2f}" for f in fractions)
    print(f"{'cluster':<10}{header}  shared%  p90  max")
    for cluster, (points, summary) in results.items():
        samples = []
        for fraction in fractions:
            eligible = [p.distinct_consumers for p in points
                        if p.fraction_of_streams <= fraction]
            samples.append(eligible[-1] if eligible else 0)
        row = "".join(f"{s:>9d}" for s in samples)
        print(f"{cluster:<10}{row}  {summary['shared_fraction']:>6.0%} "
              f"{summary['p90_consumers']:>4.0f} "
              f"{summary['max_consumers']:>4.0f}")

    for cluster, (points, summary) in results.items():
        # More than half of the datasets are shared.
        assert summary["shared_fraction"] > 0.5, cluster
        # Heavy tail: the most popular stream has far more consumers than
        # the median stream.
        median = points[len(points) // 2].distinct_consumers
        assert summary["max_consumers"] > 10 * max(1, median), cluster

    # Cluster1's Asimov effect: its p90 exceeds the other clusters'.
    c1_p90 = results["Cluster1"][1]["p90_consumers"]
    others = [results[c][1]["p90_consumers"] for c in results
              if c != "Cluster1"]
    assert c1_p90 > max(others)
    assert c1_p90 >= 16  # "reused by more than 16 downstream consumers"
    assert all(p90 >= 7 for p90 in others)  # "consumed by 7 or more"
