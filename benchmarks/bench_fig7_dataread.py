"""Figure 7c: cumulative total data read, baseline vs CloudViews.

Paper: ~39% less data read -- "very similar to the trend of input read,
although overall, data read improves by 39%, which is more than the
improvements in input read" (intermediate I/O shrinks too).
"""

from series_util import (
    assert_cumulative_monotone,
    final_improvement,
    paired_series,
    print_series,
)


def test_fig7c_cumulative_data_read(benchmark, enabled_report,
                                    baseline_report):
    rows = benchmark.pedantic(
        lambda: paired_series(enabled_report, baseline_report,
                              "data_read_bytes"),
        rounds=1, iterations=1)
    print_series("Figure 7c: cumulative data read", "bytes", rows)
    assert_cumulative_monotone(rows)
    improvement = final_improvement(rows)
    print(f"cumulative data-read improvement: {improvement:.1f}% (paper: 39%)")
    assert 15.0 < improvement < 65.0

    # Shape: the data-read gain exceeds the input-size gain (the paper's
    # observation -- intermediate reads shrink on top of inputs).
    input_rows = paired_series(enabled_report, baseline_report, "input_bytes")
    assert improvement > final_improvement(input_rows) - 2.0
