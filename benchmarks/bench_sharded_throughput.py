"""Sharded insights-service throughput: serving capacity vs shard count.

Runs the same wave-parallel cooking workload against the in-process
service and against 1/2/4/8 shard worker processes, and emits
``BENCH_sharded.json`` at the repo root for trend tracking.

Two very different columns:

* **serving jobs/sec** -- the capacity metric the deployment exists
  for.  Every annotation fetch charges the owning shard simulated
  round-trip time (cold 15ms / warm 1.5ms per tag, the same charges the
  in-process service accounts); a shard's ``busy_seconds`` is the
  serving work it performed, and the deployment's makespan is the
  *maximum* over shards, since shards serve disjoint tag partitions in
  parallel.  Near-linear scaling here means the signature-hash
  partition is balanced; the acceptance bar is >= 4x at 8 shards vs
  the single-process baseline.
* **wall jobs/sec** -- informational.  The harness itself is one
  GIL-bound driver process, so wall clock mostly measures the workload
  simulator, not the deployment.

The scaling claim is only meaningful because the *outcome* columns are
pinned: every run must produce identical per-job build/reuse decisions
and an identical catalog digest, for any worker/shard count.
"""

import json
import pathlib
import time

from repro.scheduler import ConcurrentSimulation, ConcurrentSimulationConfig
from repro.workload.generator import generate_workload

DAYS = 4
WORKERS = 4
SHARD_COUNTS = (0, 1, 2, 4, 8)
#: Shard counts compared for the acceptance ratio (baseline, scaled).
BASELINE_SHARDS = 1
SCALED_SHARDS = 8
MIN_SPEEDUP = 4.0

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_sharded.json"


def make_workload():
    return generate_workload(seed=7, virtual_clusters=3,
                             templates_per_vc=16)


def job_decision(result):
    """The schedule-invariant slice of one job's outcome."""
    return (result.job_id, result.ok, result.degraded, result.views_built,
            result.views_reused)


def run_one(shards: int):
    config = ConcurrentSimulationConfig(days=DAYS, workers=WORKERS,
                                        shards=shards)
    started = time.perf_counter()
    report = ConcurrentSimulation(make_workload(), config).run()
    wall = time.perf_counter() - started
    busy = report.shard_busy_seconds
    makespan = max(busy) if busy else None
    return {
        "shards": shards,
        "workers": WORKERS,
        "jobs": report.jobs,
        "failures": report.failures,
        "views_created": report.views_created,
        "views_reused": report.views_reused,
        "catalog_digest": report.catalog_digest,
        "decisions": [job_decision(r) for r in report.results],
        "wall_seconds": round(wall, 3),
        "wall_jobs_per_second": round(report.jobs / wall, 1),
        "shard_busy_seconds": [round(b, 4) for b in busy],
        "serving_makespan_seconds": (round(makespan, 4)
                                     if makespan else None),
        "serving_jobs_per_second": (round(report.jobs / makespan, 1)
                                    if makespan else None),
    }


def run_sweep():
    runs = [run_one(shards) for shards in SHARD_COUNTS]
    by_shards = {run["shards"]: run for run in runs}
    baseline = by_shards[BASELINE_SHARDS]
    scaled = by_shards[SCALED_SHARDS]
    speedup = (baseline["serving_makespan_seconds"]
               / scaled["serving_makespan_seconds"])
    report = {
        "benchmark": "sharded_throughput",
        "workload": "cooking seed=7 vcs=3 templates=48",
        "days": DAYS,
        "workers": WORKERS,
        "min_speedup_required": MIN_SPEEDUP,
        "serving_speedup_8_vs_1": round(speedup, 2),
        "runs": runs,
    }
    # Outcome parity across every deployment shape -- without this the
    # throughput columns compare different computations.
    digests = {run["catalog_digest"] for run in runs}
    decisions = {tuple(map(tuple, run["decisions"])) for run in runs}
    assert len(digests) == 1, f"catalog digest diverged: {digests}"
    assert len(decisions) == 1, "per-job build/reuse decisions diverged"
    assert all(run["failures"] == 0 for run in runs)
    assert speedup >= MIN_SPEEDUP, (
        f"serving speedup {speedup:.2f}x at {SCALED_SHARDS} shards "
        f"is below the {MIN_SPEEDUP}x acceptance bar")
    # The JSON artifact stays compact: decisions are proven equal above
    # and then dropped.
    for run in runs:
        del run["decisions"]
    return report


def print_report(report):
    print("\nSharded insights-service throughput "
          f"(days={report['days']}, workers={report['workers']})")
    print(f"{'shards':>7}{'jobs':>6}{'serving jobs/s':>15}"
          f"{'makespan s':>12}{'wall jobs/s':>12}  digest")
    for run in report["runs"]:
        serving = run["serving_jobs_per_second"]
        makespan = run["serving_makespan_seconds"]
        print(f"{run['shards'] or 'in-proc':>7}{run['jobs']:>6}"
              f"{serving if serving else '-':>15}"
              f"{makespan if makespan else '-':>12}"
              f"{run['wall_jobs_per_second']:>12}  "
              f"{run['catalog_digest'][:12]}")
    print(f"serving speedup {SCALED_SHARDS} shards vs "
          f"{BASELINE_SHARDS}: {report['serving_speedup_8_vs_1']}x "
          f"(bar: {report['min_speedup_required']}x)")


def test_sharded_throughput(benchmark):
    report = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_report(report)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"sweep -> {OUTPUT}")


if __name__ == "__main__":
    report = run_sweep()
    print_report(report)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"sweep -> {OUTPUT}")
