"""Shared fixtures for the benchmark harness.

The paper's Table 1 and Figures 6-7 all read the same two-month production
deployment.  We run one scaled-down deployment window (a pair of identical
simulations, CloudViews enabled and disabled) once per session and let
every benchmark read from it.
"""

from __future__ import annotations

import pytest

from repro.core import SimulationConfig, WorkloadSimulation
from repro.workload import generate_workload

#: Scaled-down stand-in for the paper's two-month window.
DEPLOYMENT_DAYS = 8
DEPLOYMENT_SEED = 7
VIRTUAL_CLUSTERS = 3
TEMPLATES_PER_VC = 16


def deployment_workload():
    return generate_workload(
        seed=DEPLOYMENT_SEED,
        virtual_clusters=VIRTUAL_CLUSTERS,
        templates_per_vc=TEMPLATES_PER_VC,
    )


def run_deployment(enabled: bool, days: int = DEPLOYMENT_DAYS):
    config = SimulationConfig(days=days, cloudviews_enabled=enabled)
    return WorkloadSimulation(deployment_workload(), config).run()


@pytest.fixture(scope="session")
def enabled_report():
    """The deployment window with CloudViews enabled."""
    return run_deployment(True)


@pytest.fixture(scope="session")
def baseline_report():
    """The identical window with CloudViews disabled."""
    return run_deployment(False)
