"""Figure 3: overlaps in production workloads over a long window.

Paper (10 months, 67M jobs, 4.3B subexpressions): "more than 75% of query
subexpressions are consistently overlapping over the 10-month window.
Furthermore, the average repeat frequency consistently hovers around 5."

We profile a scaled window (compile-only, no cluster simulation) and check
both series are stable at the paper's levels across every bucket.
"""

from repro.workload import generate_workload, overlap_series
from repro.workload.profiling import compile_only_repository

WINDOW_DAYS = 15   # scaled stand-in for the paper's 10 months
BUCKET_DAYS = 3    # each Figure-3 point aggregates a window of workload


def test_fig3_overlap_series(benchmark):
    workload = generate_workload(seed=7, virtual_clusters=3,
                                 templates_per_vc=16)

    repository = benchmark.pedantic(
        lambda: compile_only_repository(workload, days=WINDOW_DAYS),
        rounds=1, iterations=1)

    points = overlap_series(repository, bucket_days=BUCKET_DAYS)

    print("\nFigure 3: repeated subexpressions and repeat frequency "
          f"({BUCKET_DAYS}-day buckets)")
    print(f"{'day':>4} {'repeated%':>10} {'avg freq':>9} {'subexprs':>9}")
    for p in points:
        print(f"{p.day:>4} {p.repeated_fraction:>9.1%} "
              f"{p.average_repeat_frequency:>9.2f} {p.subexpressions:>9}")

    overall_repeated = repository.repeated_fraction()
    print(f"window total repeated fraction: {overall_repeated:.1%} "
          f"(paper: >75%)")

    assert len(points) == WINDOW_DAYS // BUCKET_DAYS
    # Per-bucket stability: every point stays above the paper's 75% line.
    assert all(p.repeated_fraction > 0.75 for p in points)
    # Repeat frequency hovers in a band around the paper's ~5.
    assert all(3.0 < p.average_repeat_frequency < 9.0 for p in points)
    spread = (max(p.repeated_fraction for p in points)
              - min(p.repeated_fraction for p in points))
    assert spread < 0.15  # "consistently overlapping"
