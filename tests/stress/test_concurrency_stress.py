"""Concurrency stress tests (run in CI via ``pytest -m stress``).

N worker threads x M jobs hammering one engine, with and without
injected serving-layer faults.  The invariants under test:

* no duplicate view buildout for the same strict signature -- the
  insights service's atomic lock table is the only guard;
* a failed producing job releases its view locks, so later jobs can
  build the signature;
* the circuit breaker walks closed -> open -> half-open -> closed under
  injected faults, and with >= 10% injected fetch failures every job
  still completes -- degraded jobs compile without reuse, none error;
* ``UsageMetrics`` counters stay exact and monotonic under threads.
"""

import threading

import pytest

from repro.catalog import schema_of
from repro.common.errors import ExecutionError
from repro.engine import ScopeEngine
from repro.executor import UdoRegistry
from repro.insights import (
    FaultInjector,
    InsightsClient,
    InsightsClientConfig,
)
from repro.insights.service import UsageMetrics
from repro.optimizer.context import Annotation
from repro.optimizer.rules import apply_rewrites
from repro.plan import PlanBuilder, normalize
from repro.plan.logical import Join
from repro.scheduler import (
    ConcurrentSimulation,
    ConcurrentSimulationConfig,
    JobRequest,
    JobScheduler,
    SchedulerConfig,
)
from repro.signatures import enumerate_subexpressions
from repro.sql import parse
from repro.workload.generator import generate_workload

pytestmark = pytest.mark.stress

SQL = ("SELECT name, SUM(v) AS s FROM T JOIN D "
       "WHERE v > 1 GROUP BY name")
FAILING_SQL = ("SELECT name, SUM(v) AS s FROM T JOIN D "
               "WHERE v > 1 GROUP BY name PROCESS USING Explode")


def build_engine(insights=None):
    udos = UdoRegistry()

    def explode(rows):
        raise ExecutionError("injected container failure")

    udos.register("Explode", explode)
    engine = ScopeEngine(udos=udos, insights=insights)
    engine.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 6, v=float(i)) for i in range(60)])
    engine.register_table(
        schema_of("D", [("k", "int"), ("name", "str")]),
        [dict(k=i, name=f"n{i}") for i in range(6)])
    return engine


def annotate_shared_join(engine, sql=SQL):
    plan = normalize(apply_rewrites(
        PlanBuilder(engine.catalog).build(parse(sql))))
    subs = enumerate_subexpressions(plan, engine.signature_salt)
    join = max((s for s in subs if isinstance(s.plan, Join)),
               key=lambda s: s.height)
    engine.insights.publish([Annotation(join.recurring, join.tag)])
    return join


class TestNoDuplicateBuildout:
    def test_many_threads_one_buildout_per_signature(self):
        engine = build_engine()
        annotate_shared_join(engine)
        with JobScheduler(engine, SchedulerConfig(workers=8)) as scheduler:
            results = scheduler.run_batch(
                [JobRequest(sql=SQL) for _ in range(40)], now=0.0)
        assert all(r.ok for r in results)
        # 40 concurrent jobs raced for one shared join: exactly one won
        # the lock and materialized; everyone else was denied.
        # (Losers usually see the open materialization slot and skip the
        # lock entirely, so a lock *denial* is not guaranteed -- only
        # single buildout is.)
        assert sum(r.views_built for r in results) == 1
        assert engine.view_store.total_created == 1
        assert engine.insights.held_locks() == {}

    def test_signature_materialized_once_across_waves(self):
        engine = build_engine()
        annotate_shared_join(engine)
        with JobScheduler(engine, SchedulerConfig(workers=8)) as scheduler:
            for wave in range(5):
                results = scheduler.run_batch(
                    [JobRequest(sql=SQL) for _ in range(8)],
                    now=float(wave))
                assert all(r.ok for r in results)
        # Built in wave 0, reused by every later wave.
        assert engine.view_store.total_created == 1
        assert engine.view_store.total_reused >= 8 * 4

    def test_failed_producer_releases_lock_for_next_wave(self):
        engine = build_engine()
        join = annotate_shared_join(engine, sql=FAILING_SQL)
        with JobScheduler(engine, SchedulerConfig(workers=4)) as scheduler:
            crashed = scheduler.run_batch(
                [JobRequest(sql=FAILING_SQL) for _ in range(4)], now=0.0)
            assert all(not r.ok for r in crashed)
            assert engine.insights.lock_holder(join.strict) is None
            # The same fragment is buildable by a healthy job now.
            healthy = scheduler.run_batch(
                [JobRequest(sql=SQL)], now=1.0)
        assert healthy[0].ok
        assert healthy[0].views_built == 1


class TestBreakerUnderFaults:
    def test_breaker_cycles_under_concurrent_faulty_fetches(self):
        config = InsightsClientConfig(
            max_retries=0, breaker_failure_threshold=5,
            breaker_cooldown_fetches=10)
        injector = FaultInjector(error_rate=1.0)
        client = InsightsClient(config=config, injector=injector)
        client.publish([Annotation("rec-1", "tag-1")])
        errors = []

        def hammer(count):
            try:
                for _ in range(count):
                    client.fetch_annotations(["tag-1"], now=0.0)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(30,))
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, "degradation must never raise into the caller"
        assert client.breaker.state == "open"
        assert "open" in client.breaker.transitions
        # Heal the service and drain the cooldown: closed again.
        injector.error_rate = 0.0
        for _ in range(config.breaker_cooldown_fetches + 1):
            client.fetch_annotations(["tag-1"], now=0.0)
        assert client.breaker.state == "closed"
        assert client.breaker.transitions[-2:] == ["half-open", "closed"]

    def test_ten_percent_fetch_failures_zero_job_failures(self):
        # >= 10% of serving round trips fail; with retries disabled every
        # fault degrades its job.  Jobs must all succeed anyway.
        workload = generate_workload(seed=11)
        simulation = ConcurrentSimulation(
            workload,
            ConcurrentSimulationConfig(days=2, workers=8),
            client_config=InsightsClientConfig(max_retries=0),
            fault_injector=FaultInjector(drop_rate=0.08, error_rate=0.07))
        report = simulation.run()
        assert report.jobs > 50
        assert report.failures == 0
        assert report.degraded_jobs > 0
        client = simulation.engine.insights
        assert client.degraded_fetches > 0

    def test_degraded_jobs_match_baseline_rows(self):
        # A degraded compile must still return correct results -- it just
        # skips reuse.  Compare each faulty-run job against a clean run.
        def outcomes(injector):
            engine = build_engine(insights=InsightsClient(
                config=InsightsClientConfig(max_retries=0, seed=3),
                injector=injector))
            annotate_shared_join(engine)
            with JobScheduler(engine,
                              SchedulerConfig(workers=8)) as scheduler:
                results = []
                for wave in range(4):
                    results += scheduler.run_batch(
                        [JobRequest(sql=SQL) for _ in range(6)],
                        now=float(wave))
            return results

        faulty = outcomes(FaultInjector(drop_rate=0.2, seed=5))
        clean = outcomes(None)
        assert all(r.ok for r in faulty)
        assert any(r.degraded for r in faulty)
        expected = sorted(map(repr, clean[0].rows))
        for result in faulty:
            assert sorted(map(repr, result.rows)) == expected


class TestUsageMetricsUnderThreads:
    def test_counters_exact_and_monotonic(self):
        metrics = UsageMetrics()
        threads_n, per_thread = 8, 2000
        snapshots = []
        stop = threading.Event()

        def bump():
            for _ in range(per_thread):
                metrics.inc("fetches")
                metrics.inc("annotations_served", 3)

        def sample():
            while not stop.is_set():
                snapshots.append(metrics.snapshot())

        sampler = threading.Thread(target=sample)
        workers = [threading.Thread(target=bump) for _ in range(threads_n)]
        sampler.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        sampler.join()

        assert metrics.fetches == threads_n * per_thread
        assert metrics.annotations_served == threads_n * per_thread * 3
        for earlier, later in zip(snapshots, snapshots[1:]):
            for name, value in earlier.items():
                assert later[name] >= value, f"{name} went backwards"

    def test_service_metrics_monotonic_under_concurrent_fetches(self):
        engine = build_engine()
        annotate_shared_join(engine)
        snapshots = []
        stop = threading.Event()

        def sample():
            while not stop.is_set():
                snapshots.append(engine.insights.metrics.snapshot())

        sampler = threading.Thread(target=sample)
        sampler.start()
        with JobScheduler(engine, SchedulerConfig(workers=8)) as scheduler:
            for wave in range(4):
                scheduler.run_batch(
                    [JobRequest(sql=SQL) for _ in range(10)],
                    now=float(wave))
        stop.set()
        sampler.join()

        assert engine.insights.metrics.fetches == 40
        for earlier, later in zip(snapshots, snapshots[1:]):
            for name, value in earlier.items():
                assert later[name] >= value, f"{name} went backwards"
