"""Lifecycle stress tests (run in CI via ``pytest -m stress``).

A live GC janitor thread sweeps aggressively while the concurrent job
scheduler hammers the same engine.  The invariants under test:

* no job ever fails because the janitor collected a view it was reading
  -- execute-time pins keep in-flight ViewScans resident;
* reuse results equal the no-GC baseline results (the matcher's atomic
  ``claim_for_reuse`` means a claimed view cannot be swept mid-scan);
* ViewStore counters stay monotonic while builds, reuses, purges, and
  sweeps interleave;
* crash-recovery holds under churn: a journal written while the janitor
  and scheduler race still replays to the exact pre-crash digest.
"""

import threading

import pytest

from repro.catalog import schema_of
from repro.engine import ScopeEngine
from repro.engine.engine import EngineConfig
from repro.lifecycle import LifecycleConfig, LifecycleManager
from repro.optimizer.context import Annotation
from repro.optimizer.rules import apply_rewrites
from repro.plan import PlanBuilder, normalize
from repro.plan.logical import Join
from repro.scheduler import JobRequest, JobScheduler, SchedulerConfig
from repro.signatures import enumerate_subexpressions
from repro.sql import parse

pytestmark = pytest.mark.stress

SQL = ("SELECT name, SUM(v) AS s FROM T JOIN D "
       "WHERE v > 1 GROUP BY name")


def build_engine(ttl=30.0):
    engine = ScopeEngine(config=EngineConfig(view_ttl_seconds=ttl))
    engine.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 6, v=float(i)) for i in range(60)])
    engine.register_table(
        schema_of("D", [("k", "int"), ("name", "str")]),
        [dict(k=i, name=f"n{i}") for i in range(6)])
    return engine


def annotate_shared_join(engine):
    plan = normalize(apply_rewrites(
        PlanBuilder(engine.catalog).build(parse(SQL))))
    subs = enumerate_subexpressions(plan, engine.signature_salt)
    join = max((s for s in subs if isinstance(s.plan, Join)),
               key=lambda s: s.height)
    engine.insights.publish([Annotation(join.recurring, join.tag)])
    return join


def result_set(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


class TestJanitorVsScheduler:
    def test_sweeping_janitor_never_breaks_a_reading_job(self):
        engine = build_engine(ttl=30.0)
        manager = LifecycleManager(engine, LifecycleConfig())
        annotate_shared_join(engine)
        baseline = result_set(
            engine.run_sql(SQL, reuse_enabled=False, now=0.0).rows)

        stop = threading.Event()
        sweep_errors = []

        def hostile_janitor():
            # Sweeps with the clock pinned far in the future, so every
            # sealed view is expiry-eligible the moment it exists; only
            # pins keep readers safe.
            while not stop.is_set():
                try:
                    manager.sweep(now=1e9)
                except Exception as exc:  # pragma: no cover
                    sweep_errors.append(exc)

        janitor = threading.Thread(target=hostile_janitor)
        janitor.start()
        try:
            results = []
            with JobScheduler(engine,
                              SchedulerConfig(workers=8)) as scheduler:
                for wave in range(6):
                    results.extend(scheduler.run_batch(
                        [JobRequest(sql=SQL) for _ in range(10)],
                        now=float(wave)))
        finally:
            stop.set()
            janitor.join()

        manager.close()
        assert sweep_errors == []
        assert all(r.ok for r in results), \
            [r.error for r in results if not r.ok]
        for result in results:
            assert result_set(result.run.rows) == baseline

    def test_counters_stay_monotonic_under_combined_churn(self):
        engine = build_engine(ttl=5.0)
        manager = LifecycleManager(engine, LifecycleConfig())
        annotate_shared_join(engine)

        snapshots = []
        stop = threading.Event()

        def sweeper():
            now = 0.0
            while not stop.is_set():
                now += 10.0
                manager.sweep(now=now)
                snapshots.append(engine.view_store.counters())

        thread = threading.Thread(target=sweeper)
        thread.start()
        try:
            with JobScheduler(engine,
                              SchedulerConfig(workers=6)) as scheduler:
                for wave in range(10):
                    scheduler.run_batch(
                        [JobRequest(sql=SQL) for _ in range(5)],
                        now=float(wave * 3))
        finally:
            stop.set()
            thread.join()
        snapshots.append(engine.view_store.counters())
        manager.close()

        keys = ("total_created", "total_reused", "total_expired",
                "total_purged", "total_gc_evicted")
        for earlier, later in zip(snapshots, snapshots[1:]):
            for key in keys:
                assert later[key] >= earlier[key], key

    def test_journal_under_churn_still_replays_to_digest(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        engine = build_engine(ttl=40.0)
        manager = LifecycleManager(
            engine, LifecycleConfig(journal_dir=journal_dir,
                                    snapshot_every_ops=7))
        annotate_shared_join(engine)

        stop = threading.Event()

        def sweeper():
            now = 0.0
            while not stop.is_set():
                now += 25.0
                manager.sweep(now=now)

        thread = threading.Thread(target=sweeper)
        thread.start()
        try:
            with JobScheduler(engine,
                              SchedulerConfig(workers=6)) as scheduler:
                for wave in range(8):
                    scheduler.run_batch(
                        [JobRequest(sql=SQL) for _ in range(5)],
                        now=float(wave * 2))
        finally:
            stop.set()
            thread.join()
        digest = engine.view_store.catalog_digest()
        counters = engine.view_store.counters()
        # Crash without close(): snapshot + WAL tail must reproduce
        # the catalog exactly.

        fresh = ScopeEngine()
        manager2 = LifecycleManager(
            fresh, LifecycleConfig(journal_dir=journal_dir))
        try:
            assert fresh.view_store.catalog_digest() == digest
            assert fresh.view_store.counters() == counters
        finally:
            manager2.close()
