"""Sharded-deployment stress tests (run in CI via ``pytest -m stress``).

Many client threads hammering one router over the process boundary, with
and without shards being SIGKILLed underneath them.  The invariants:

* the per-signature lock table stays exclusive across shards and
  threads -- exactly one winner per signature per round;
* concurrent fetches through the fault-tolerant client never raise and
  never return wrong annotations, even while workers are being killed
  (they degrade to empty instead);
* worker bookkeeping (requests served, annotation counts) stays exact
  after the dust settles.
"""

import threading

import pytest

from repro.common.hashing import shard_for
from repro.insights import InsightsClient
from repro.optimizer.context import Annotation
from repro.shard import ShardConfig, ShardRouter, ShardSupervisor

pytestmark = pytest.mark.stress

THREADS = 8
ROUNDS = 25


def make_annotations(count=32):
    return [Annotation(recurring_signature=f"sig-{i}", tag=f"tag-{i % 16}",
                       expected_rows=i, virtual_cluster="vc1")
            for i in range(count)]


@pytest.fixture(params=[2, 4], ids=lambda n: f"shards{n}")
def deployment(request):
    supervisor = ShardSupervisor(ShardConfig(shards=request.param))
    supervisor.start()
    router = ShardRouter(supervisor)
    yield supervisor, router
    router.close()
    supervisor.close()


class TestRouterUnderThreads:
    def test_concurrent_fetches_return_published_truth(self, deployment):
        _, router = deployment
        published = make_annotations()
        router.publish(published)
        by_tag = {}
        for annotation in published:
            by_tag.setdefault(annotation.tag, set()).add(
                annotation.recurring_signature)
        errors = []

        def hammer(worker_id):
            try:
                for round_no in range(ROUNDS):
                    tags = [f"tag-{(worker_id + i) % 16}" for i in range(4)]
                    fetched = router.fetch_tag_annotations(tags)
                    for tag in tags:
                        got = {a.recurring_signature for a in fetched[tag]}
                        assert got == by_tag[tag], (tag, got)
            except Exception as error:  # noqa: BLE001 - collected below
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert router.annotation_count() == len(published)

    def test_lock_exclusion_across_shards_and_threads(self, deployment):
        _, router = deployment
        for round_no in range(ROUNDS):
            signature = f"strict-{round_no}"
            winners = []
            barrier = threading.Barrier(THREADS)

            def contend(holder, signature=signature, barrier=barrier):
                barrier.wait()
                if router.acquire_view_lock(signature, holder=holder):
                    winners.append(holder)

            threads = [threading.Thread(target=contend, args=(f"job-{i}",))
                       for i in range(THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(winners) == 1
            assert router.lock_holder(signature) == winners[0]
            router.release_view_lock(signature, holder=winners[0])
        assert router.held_locks() == {}


class TestKillsUnderLoad:
    def test_client_absorbs_sigkills_mid_fetch(self, deployment):
        supervisor, router = deployment
        shards = supervisor.config.shards
        client = InsightsClient(router)
        published = make_annotations()
        client.publish(published)
        errors = []
        stop = threading.Event()

        def fetch_loop(worker_id):
            try:
                step = 0
                while not stop.is_set():
                    tags = [f"tag-{(worker_id + step) % 16}"]
                    fetched = client.fetch_annotations(
                        tags, now=float(step))
                    # Degraded fetches return {}; successful ones must
                    # return exactly the published annotations.
                    for signature, annotation in fetched.items():
                        assert annotation.tag in tags
                    step += 1
            except Exception as error:  # noqa: BLE001 - collected below
                errors.append(error)

        threads = [threading.Thread(target=fetch_loop, args=(i,))
                   for i in range(THREADS)]
        for thread in threads:
            thread.start()
        try:
            for victim in range(shards * 2):
                supervisor.kill(victim % shards)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        # The deployment healed: every annotation is still served.
        assert router.annotation_count() == len(published)
        assert sum(supervisor.restarts) >= 1
