"""Stress test: the runtime lock sanitizer over the real stack.

Runs the full concurrent pipeline -- scheduler workers, insights
batching, the view store, and the lifecycle janitor sweeping on a tight
interval -- with the sanitizer enabled in collect-only mode.  The
assertion is that the production lock hierarchy holds under load: zero
recorded violations.  This is the runtime twin of the static
``concurrency-*`` lint gate over ``src/repro``.
"""

import pytest

from repro.api import LifecycleConfig, Session
from repro.catalog import schema_of
from repro.common.sync import disable_sanitizer, enable_sanitizer, sanitizer
from repro.core.controls import MultiLevelControls
from repro.insights import FaultInjector, InsightsClientConfig
from repro.scheduler import SchedulerConfig
from repro.selection.policies import SelectionPolicy

pytestmark = pytest.mark.stress

SQL = ("SELECT CustomerId, SUM(Price) AS s FROM Sales JOIN Customer "
       "WHERE MktSegment = 'Asia' GROUP BY CustomerId")


@pytest.fixture
def strict_sanitizer():
    """Collect-only sanitizer (hierarchy + deadlock watch) for the test,
    restoring whatever was ambient afterwards."""
    had = sanitizer()
    san = enable_sanitizer(raise_on_violation=False)
    yield san
    disable_sanitizer()
    if had is not None:
        enable_sanitizer(recorder=had.recorder,
                         raise_on_violation=had.raise_on_violation,
                         check_hierarchy=had.check_hierarchy,
                         detect_deadlocks=had.detect_deadlocks)


def install_tables(engine):
    engine.register_table(
        schema_of("Sales", [("CustomerId", "int"), ("Price", "float"),
                            ("Day", "str")]),
        [dict(CustomerId=i % 5, Price=float(i), Day="d0")
         for i in range(50)])
    engine.register_table(
        schema_of("Customer", [("CustomerId", "int"), ("MktSegment", "str")]),
        [dict(CustomerId=i, MktSegment="Asia" if i % 2 else "Europe")
         for i in range(5)])


def run_workload(session):
    install_tables(session.engine)
    for wave in range(4):
        results = session.run_batch([SQL] * 8, now=float(wave))
        assert all(r.ok for r in results)
        if wave == 0:
            session.analyze_and_publish()


class TestSanitizedStack:
    def test_full_stack_holds_the_hierarchy(self, strict_sanitizer,
                                            tmp_path):
        """Scheduler + insights + storage + janitor under one sanitizer:
        the shipped lock ranks admit no inversion and no deadlock."""
        controls = MultiLevelControls()
        controls.enable_vc("default")
        session = Session(
            controls=controls,
            policy=SelectionPolicy(min_reuses_per_epoch=0.0),
            scheduler_config=SchedulerConfig(workers=8),
            lifecycle=LifecycleConfig(
                journal_dir=str(tmp_path / "journal"),
                start_janitor=True, gc_interval_seconds=0.002))
        try:
            run_workload(session)
        finally:
            session.close()
        assert strict_sanitizer.violations == [], strict_sanitizer.violations

    def test_hierarchy_holds_under_injected_faults(self, strict_sanitizer):
        """Degradation paths (retries, breaker transitions, batch
        failure fan-out) take the same locks in the same order."""
        controls = MultiLevelControls()
        controls.enable_vc("default")
        session = Session(
            controls=controls,
            policy=SelectionPolicy(min_reuses_per_epoch=0.0),
            scheduler_config=SchedulerConfig(workers=8),
            client_config=InsightsClientConfig(
                max_retries=1, breaker_failure_threshold=3,
                breaker_cooldown_fetches=2),
            fault_injector=FaultInjector(error_rate=0.3, seed=5))
        try:
            run_workload(session)
        finally:
            session.close()
        assert strict_sanitizer.violations == [], strict_sanitizer.violations
