"""Stress tests for the insights client's batching under faults.

The combining leader/follower scheme must flush each batch exactly once:
the invariant checked here is that the *service-side* fetch count equals
the client's ``batch_rounds`` counter when no faults are injected, and
never exceeds it when the injector is rolling errors (the injector
raises before the round trip reaches the service).  Every concurrent
caller must come back -- with annotations or degraded-empty -- and none
may raise.
"""

import threading

import pytest

from repro.insights import (
    FaultInjector,
    InsightsClient,
    InsightsClientConfig,
    InsightsService,
)
from repro.optimizer.context import Annotation

pytestmark = pytest.mark.stress

THREADS = 8
FETCHES_PER_THREAD = 25


class CountingService(InsightsService):
    """Counts serving-layer fetches so batch flushes can be audited."""

    def __init__(self):
        super().__init__()
        self.fetch_calls = 0
        self._count_mutex = threading.Lock()

    def fetch_tag_annotations(self, tags):
        with self._count_mutex:
            self.fetch_calls += 1
        return super().fetch_tag_annotations(tags)


def build_client(service, **config_kwargs):
    defaults = dict(
        # Zero TTL: every fetch misses the local cache and exercises the
        # batching path instead of short-circuiting on a cache hit.
        cache_ttl_seconds=0.0,
        batch_fetches=True,
        seed=7,
    )
    defaults.update(config_kwargs)
    config = InsightsClientConfig(**defaults)
    client = InsightsClient(service, config=config)
    tags = [f"tag-{i}" for i in range(THREADS * 2)]
    client.publish([
        Annotation(recurring_signature=f"rec-{tag}", tag=tag,
                   expected_rows=10, expected_bytes=100)
        for tag in tags
    ])
    return client, tags


def hammer(client, tags):
    """THREADS callers x FETCHES_PER_THREAD fetches through one client."""
    barrier = threading.Barrier(THREADS, timeout=10.0)
    failures = []
    served = [0] * THREADS
    degraded = [0] * THREADS

    def worker(ident):
        try:
            barrier.wait()
            for i in range(FETCHES_PER_THREAD):
                # Overlapping two-tag fetches so batches genuinely merge.
                pair = (tags[(ident + i) % len(tags)],
                        tags[(ident + i + 1) % len(tags)])
                result = client.fetch_annotations(pair, now=0.0)
                if client.last_fetch_degraded:
                    degraded[ident] += 1
                    assert result == {}
                else:
                    served[ident] += 1
                    assert len(result) == 2
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append((ident, exc))

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)
    assert failures == [], failures
    return sum(served), sum(degraded)


class TestBatchingNoFaults:
    def test_each_batch_flushes_exactly_once(self):
        service = CountingService()
        client, tags = build_client(service)
        served, degraded = hammer(client, tags)
        assert degraded == 0
        assert served == THREADS * FETCHES_PER_THREAD
        # The exactly-once invariant: one serving-layer call per batch
        # round, no duplicate flush from a follower or a stale leader.
        assert service.fetch_calls == client.batch_rounds
        assert client.batch_rounds >= 1


class TestBatchingUnderFaults:
    def test_no_duplicate_flushes_with_injected_errors(self):
        service = CountingService()
        client, tags = build_client(
            service, max_retries=2, breaker_failure_threshold=5,
            breaker_cooldown_fetches=4)
        client.injector = FaultInjector(error_rate=0.2, seed=11)
        served, degraded = hammer(client, tags)
        # Every caller completed, with a mix of served and degraded.
        assert served + degraded == THREADS * FETCHES_PER_THREAD
        assert served > 0
        # The injector raises *before* the service call, so a faulted
        # round counts toward batch_rounds but never reaches the service
        # -- service-side calls can only be <= the rounds started.
        assert service.fetch_calls <= client.batch_rounds
        assert service.fetch_calls > 0

    def test_drops_and_errors_still_terminate_every_caller(self):
        service = CountingService()
        client, tags = build_client(
            service, max_retries=1, breaker_failure_threshold=3,
            breaker_cooldown_fetches=2)
        client.injector = FaultInjector(error_rate=0.15, drop_rate=0.15,
                                        seed=23)
        served, degraded = hammer(client, tags)
        assert served + degraded == THREADS * FETCHES_PER_THREAD
        assert service.fetch_calls <= client.batch_rounds
