"""Property-based tests for the soundness analyzer.

Two directions:

* the *positive* direction — every plan the builder produces (random SQL,
  the TPC-DS suite, the generated cooking templates) is accepted by the
  validator with zero findings, and satisfies the signature-soundness
  properties (rebuild-determinism, recurring-mask invariance) directly;
* the *negative* direction is covered by the unit tests in
  ``tests/unit/test_analysis_rules.py``, which corrupt plans on purpose.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisContext, Analyzer
from repro.analysis.signature_rules import probe_inputs, rebuild
from repro.catalog import Catalog, schema_of
from repro.common.rng import rng_for
from repro.plan import PlanBuilder, normalize
from repro.plan.logical import Union
from repro.signatures import recurring_signature, strict_signature
from repro.sql import parse
from repro.workload import generate_workload
from repro.workload.tpcds import TPCDS_QUERIES, tpcds_schemas

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

SALT = "scope-r1"


def _catalog():
    catalog = Catalog()
    catalog.register(schema_of("Events", [
        ("UserId", "int"), ("Value", "float"), ("Clicks", "int"),
        ("Day", "str")]), 100)
    catalog.register(schema_of("Users", [
        ("Id", "int"), ("Segment", "str")]), 10)
    return catalog


CATALOG = _catalog()

_NUMERIC_COLS = ["Value", "Clicks", "UserId"]
_COMPARISONS = ["=", "<>", "<", "<=", ">", ">="]

predicates = st.lists(
    st.tuples(st.sampled_from(_NUMERIC_COLS),
              st.sampled_from(_COMPARISONS),
              st.integers(min_value=0, max_value=25)),
    min_size=0, max_size=3)

aggregates = st.sampled_from(
    ["COUNT(*)", "SUM(Value)", "MIN(Clicks)", "MAX(Value)", "AVG(Clicks)"])

group_keys = st.sampled_from(["UserId", "Day"])

join_flags = st.booleans()


def build_sql(key, agg, preds, joined, param_day):
    where = " AND ".join(f"{col} {op} {value}"
                         for col, op, value in preds)
    if param_day:
        clause = "Day = @runDate"
        where = f"{where} AND {clause}" if where else clause
    source = ("Events JOIN Users ON UserId = Id"
              if joined else "Events")
    sql = f"SELECT {key}, {agg} AS metric FROM {source}"
    if where:
        sql += f" WHERE {where}"
    sql += f" GROUP BY {key}"
    return sql


def build_plan(key, agg, preds, joined, param_day):
    params = {"runDate": "d0042"} if param_day else None
    sql = build_sql(key, agg, preds, joined, param_day)
    return normalize(PlanBuilder(CATALOG, params).build(parse(sql)))


@given(key=group_keys, agg=aggregates, preds=predicates,
       joined=join_flags, param_day=st.booleans())
@SETTINGS
def test_validator_accepts_every_built_plan(key, agg, preds, joined,
                                            param_day):
    plan = build_plan(key, agg, preds, joined, param_day)
    report = Analyzer().analyze_plan(plan, AnalysisContext(salt=SALT))
    assert report.ok, report.render_text()


@given(key=group_keys, agg=aggregates, preds=predicates,
       joined=join_flags, param_day=st.booleans())
@SETTINGS
def test_signatures_survive_structural_rebuild(key, agg, preds, joined,
                                               param_day):
    plan = build_plan(key, agg, preds, joined, param_day)
    clone = rebuild(plan)
    assert strict_signature(clone, SALT) == strict_signature(plan, SALT)
    assert recurring_signature(clone, SALT) == \
        recurring_signature(plan, SALT)


@given(key=group_keys, agg=aggregates, preds=predicates,
       joined=join_flags)
@SETTINGS
def test_recurring_mask_invariant_under_probe(key, agg, preds, joined):
    plan = build_plan(key, agg, preds, joined, param_day=True)
    probed, changed = probe_inputs(plan)
    assert changed  # every plan scans at least one stream
    assert recurring_signature(probed, SALT) == \
        recurring_signature(plan, SALT)
    assert strict_signature(probed, SALT) != strict_signature(plan, SALT)


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_union_signature_is_input_order_invariant(seed):
    rng = rng_for(seed, "analysis-properties", "union")
    inputs = [build_plan("UserId", "SUM(Value)",
                         [("Clicks", ">", i)], False, False)
              for i in range(3)]
    union = Union(tuple(inputs))
    shuffled_inputs = list(inputs)
    rng.shuffle(shuffled_inputs)
    shuffled = Union(tuple(shuffled_inputs))
    assert strict_signature(union, SALT) == \
        strict_signature(shuffled, SALT)


# --------------------------------------------------------------------- #
# whole-workload acceptance: the bundled suites must lint clean


def _tpcds_catalog():
    catalog = Catalog()
    for schema in tpcds_schemas():
        catalog.register(schema, 100)
    return catalog


@pytest.mark.parametrize("name,sql", TPCDS_QUERIES)
def test_validator_accepts_tpcds_query(name, sql):
    catalog = _tpcds_catalog()
    plan = normalize(PlanBuilder(catalog).build(parse(sql)))
    report = Analyzer().analyze_plan(
        plan, AnalysisContext(catalog=catalog, salt=SALT), job_id=name)
    assert report.ok, report.render_text()


def test_validator_accepts_pattern_workload_templates():
    workload = generate_workload(seed=11, virtual_clusters=2,
                                 templates_per_vc=6)
    catalog = Catalog()
    from repro.engine.engine import ScopeEngine

    engine = ScopeEngine(catalog=catalog)
    workload.install(engine)
    analyzer = Analyzer()
    plans = []
    for instance in workload.jobs_for_day(0):
        plan = normalize(PlanBuilder(
            catalog, instance.params).build(parse(instance.template.sql)))
        plans.append((instance.template.template_id, plan))
    report = analyzer.analyze_workload(
        plans, AnalysisContext(catalog=catalog, salt=SALT))
    assert report.ok, report.render_text()
    assert report.plans_analyzed == len(plans)
