"""Property-based tests for the physical join kernels and new predicates."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.executor.executor import (
    _hash_join,
    _merge_join,
    _nested_loop_join,
)
from repro.plan.expressions import ColumnRef, InList, Like, Literal
from repro.plan.logical import Join, Scan

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

left_rows = st.lists(
    st.fixed_dictionaries({"k": st.integers(0, 8),
                           "v": st.integers(-100, 100)}),
    max_size=25)
right_rows = st.lists(
    st.fixed_dictionaries({"rk": st.integers(0, 8),
                           "w": st.integers(-100, 100)}),
    max_size=25)


def make_join(how="inner"):
    left = Scan("L", ("k", "v"), "g1")
    right = Scan("R", ("rk", "w"), "g2")
    return Join(left, right, (ColumnRef("k"),), (ColumnRef("rk"),),
                how=how)


def canon(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


@SETTINGS
@given(left_rows, right_rows)
def test_all_join_algorithms_agree_inner(left, right):
    join = make_join("inner")
    expected = canon(_nested_loop_join(join, left, right))
    assert canon(_hash_join(join, left, right)) == expected
    assert canon(_merge_join(join, left, right)) == expected


@SETTINGS
@given(left_rows, right_rows)
def test_all_join_algorithms_agree_left(left, right):
    join = make_join("left")
    expected = canon(_nested_loop_join(join, left, right))
    assert canon(_hash_join(join, left, right)) == expected
    assert canon(_merge_join(join, left, right)) == expected


@SETTINGS
@given(left_rows, right_rows)
def test_inner_join_output_bounded(left, right):
    join = make_join("inner")
    out = _hash_join(join, left, right)
    assert len(out) <= len(left) * len(right)
    # Every output row joins on equal keys.
    for row in out:
        assert row["k"] == row["rk"] or "rk" not in row


@SETTINGS
@given(left_rows, right_rows)
def test_left_join_preserves_left_cardinality_lower_bound(left, right):
    join = make_join("left")
    out = _hash_join(join, left, right)
    assert len(out) >= len(left)


# --------------------------------------------------------------------- #
# IN / LIKE properties


@SETTINGS
@given(st.lists(st.integers(-20, 20), min_size=1, max_size=8),
       st.integers(-25, 25))
def test_in_list_equivalent_to_disjunction(values, probe):
    expr = InList(ColumnRef("x"), tuple(Literal(v) for v in values))
    row = {"x": probe}
    assert expr.evaluate(row) == (probe in values)
    negated = InList(ColumnRef("x"), tuple(Literal(v) for v in values),
                     negated=True)
    assert negated.evaluate(row) == (probe not in values)


@SETTINGS
@given(st.lists(st.integers(-20, 20), min_size=1, max_size=8),
       st.randoms(use_true_random=False))
def test_in_list_canonical_order_insensitive(values, rng):
    shuffled = list(values)
    rng.shuffle(shuffled)
    a = InList(ColumnRef("x"), tuple(Literal(v) for v in values))
    b = InList(ColumnRef("x"), tuple(Literal(v) for v in shuffled))
    assert a.canonical() == b.canonical()


_text = st.text(alphabet="abc", max_size=6)


@SETTINGS
@given(_text)
def test_like_percent_matches_everything(value):
    expr = Like(ColumnRef("s"), "%")
    assert expr.evaluate({"s": value}) is True


@SETTINGS
@given(_text, _text)
def test_like_exact_pattern_is_equality(value, pattern):
    if "%" in pattern or "_" in pattern:
        return
    expr = Like(ColumnRef("s"), pattern)
    assert expr.evaluate({"s": value}) == (value == pattern)


@SETTINGS
@given(_text, _text)
def test_like_prefix_pattern(value, prefix):
    expr = Like(ColumnRef("s"), prefix + "%")
    assert expr.evaluate({"s": value}) == value.startswith(prefix)


@SETTINGS
@given(_text)
def test_not_like_is_complement(value):
    pattern = "a%"
    positive = Like(ColumnRef("s"), pattern)
    negative = Like(ColumnRef("s"), pattern, negated=True)
    row = {"s": value}
    assert positive.evaluate(row) != negative.evaluate(row)
