"""Property: no single injected fault can change a job's results.

For any single fault spec drawn from the full injection-point registry,
on either backend, with reuse on or off, every job in a small recurring
workload must return rows byte-identical to the fault-free run.  Only
the build/reuse *decisions* are allowed to differ -- the retry loop,
the reuse-free fallback, worker respawns, and the insights degradation
path have to absorb everything else.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.backends.differential import canonical_rows
from repro.catalog import schema_of
from repro.core import MultiLevelControls
from repro.faults import FaultPlan, FaultRuntime, FaultSpec, points
from repro.selection import SelectionPolicy

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

QUERIES = [
    ("t-agg", "SELECT Day, SUM(Value) AS total FROM Events "
              "GROUP BY Day"),
    ("t-count", "SELECT Day, COUNT(*) AS n FROM Events GROUP BY Day"),
    ("t-user", "SELECT UserId, SUM(Value) AS total FROM Events "
               "GROUP BY UserId"),
]

#: Every (point, kind) pair the registry admits -- the property must
#: hold for all of them, including seams this workload never reaches.
ALL_SPECS = [(point, kind)
             for point in points.ALL_POINTS
             for kind in points.valid_kinds(point)]


def _run_sequence(backend, reuse, faults=None):
    controls = MultiLevelControls()
    if reuse:
        controls.enable_vc("vc1")
    session = Session(
        backend=backend,
        controls=controls,
        selection_algorithm="bigsubs",
        policy=SelectionPolicy(storage_budget_bytes=10_000_000,
                               min_reuses_per_epoch=0.0),
        faults=faults,
    )
    session.register_table(
        schema_of("Events", [("UserId", "int"), ("Day", "str"),
                             ("Value", "float")]),
        [dict(UserId=i % 5, Day=f"d{i % 3}", Value=float(i))
         for i in range(30)])
    results = {}
    now = 0.0
    for round_no in range(2):
        for template_id, sql in QUERIES:
            # session.run raises on failure: an unabsorbed fault fails
            # the property loudly, not via a silent row mismatch.
            result = session.run(sql, virtual_cluster="vc1",
                                 template_id=template_id, now=now)
            results[f"r{round_no}:{template_id}"] = \
                canonical_rows(result.rows)
            now += 1.0
        session.analyze_and_publish()
    session.close()
    return results


_REFERENCE = {}


def _reference(backend, reuse):
    key = (backend, reuse)
    if key not in _REFERENCE:
        _REFERENCE[key] = _run_sequence(backend, reuse, faults=None)
    return _REFERENCE[key]


@given(spec=st.sampled_from(ALL_SPECS),
       backend=st.sampled_from(["memory", "sqlite"]),
       reuse=st.booleans(),
       after=st.integers(min_value=0, max_value=4),
       seed=st.integers(min_value=0, max_value=9))
@SETTINGS
def test_single_fault_never_changes_results(spec, backend, reuse,
                                            after, seed):
    point, kind = spec
    plan = FaultPlan(specs=[FaultSpec(
        point, kind,
        delay_seconds=0.01 if kind == "delay" else 0.0,
        max_fires=1, after=after)], seed=seed,
        name=f"single-{point}-{kind}")
    faulted = _run_sequence(backend, reuse, faults=FaultRuntime(plan))
    assert faulted == _reference(backend, reuse)


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@pytest.mark.parametrize("reuse", [True, False])
def test_reference_runs_have_rows(backend, reuse):
    reference = _reference(backend, reuse)
    assert len(reference) == 2 * len(QUERIES)
    assert all(rows for rows in reference.values())
