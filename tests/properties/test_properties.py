"""Property-based tests (hypothesis) for core invariants.

The invariants that make CloudViews *safe* in production:

* signatures are deterministic, normalization-stable, and sensitive to
  semantic changes;
* plan rewrites (pushdown, folding, normalization) never change results;
* reuse never changes results: a query answered from a materialized view
  returns exactly the rows of the recomputed query;
* the Bloom filter never produces false negatives (semi-join safety);
* the containment checker is sound (never claims containment that a
  brute-force evaluation refutes);
* selection never exceeds its storage budget.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, schema_of
from repro.executor import Executor
from repro.extensions import BloomFilter, ContainmentChecker
from repro.optimizer import apply_rewrites
from repro.plan import PlanBuilder, normalize
from repro.plan.expressions import BinaryOp, ColumnRef, Literal, conjoin
from repro.selection import SelectionPolicy, greedy_select
from repro.selection.candidates import ReuseCandidate
from repro.selection.schedule import effective_frequency
from repro.signatures import strict_signature
from repro.sql import parse
from repro.storage import DataStore
from repro.telemetry import percentile

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

# --------------------------------------------------------------------- #
# a small random-query universe over one fixed schema


def _environment():
    catalog = Catalog()
    store = DataStore()
    rows_events = [dict(UserId=i % 7, Value=float(i % 23),
                        Clicks=i % 5, Day=f"d{i % 3}")
                   for i in range(60)]
    rows_users = [dict(UserId=i, Segment=["Asia", "Europe", "Americas"][i % 3])
                  for i in range(7)]
    version = catalog.register(schema_of("Events", [
        ("UserId", "int"), ("Value", "float"), ("Clicks", "int"),
        ("Day", "str")]), len(rows_events))
    store.put(version.guid, rows_events)
    version = catalog.register(schema_of("Users", [
        ("UserId", "int"), ("Segment", "str")]), len(rows_users))
    store.put(version.guid, rows_users)
    return catalog, store


CATALOG, STORE = _environment()
EXECUTOR = Executor(STORE)

_NUMERIC_COLS = ["Value", "Clicks", "UserId"]
_COMPARISONS = ["=", "<>", "<", "<=", ">", ">="]

predicates = st.lists(
    st.tuples(st.sampled_from(_NUMERIC_COLS),
              st.sampled_from(_COMPARISONS),
              st.integers(min_value=0, max_value=25)),
    min_size=1, max_size=3)

group_keys = st.sampled_from(["UserId", "Day", "Segment"])
aggregates = st.sampled_from(["SUM(Value)", "COUNT(*)", "MAX(Clicks)",
                              "AVG(Value)"])
join_flags = st.booleans()


def build_sql(conjuncts_spec, key, agg, with_join):
    where = " AND ".join(f"{c} {op} {v}" for c, op, v in conjuncts_spec)
    table = "Events JOIN Users" if with_join else "Events"
    if not with_join and key == "Segment":
        key = "Day"
    return (f"SELECT {key}, {agg} AS m FROM {table} "
            f"WHERE {where} GROUP BY {key}")


def run_plan(plan):
    return sorted(tuple(sorted(r.items())) for r in EXECUTOR.execute(plan).rows)


def compile_plan(sql):
    return PlanBuilder(CATALOG).build(parse(sql))


# --------------------------------------------------------------------- #
# signature invariants


@SETTINGS
@given(predicates, group_keys, aggregates, join_flags)
def test_signature_deterministic(spec, key, agg, join):
    sql = build_sql(spec, key, agg, join)
    a = normalize(apply_rewrites(compile_plan(sql)))
    b = normalize(apply_rewrites(compile_plan(sql)))
    assert strict_signature(a) == strict_signature(b)


@SETTINGS
@given(predicates, group_keys, aggregates, join_flags,
       st.randoms(use_true_random=False))
def test_signature_stable_under_conjunct_permutation(spec, key, agg, join, rng):
    shuffled = list(spec)
    rng.shuffle(shuffled)
    a = normalize(apply_rewrites(compile_plan(build_sql(spec, key, agg, join))))
    b = normalize(apply_rewrites(compile_plan(
        build_sql(shuffled, key, agg, join))))
    assert strict_signature(a) == strict_signature(b)


@SETTINGS
@given(predicates, group_keys, aggregates, join_flags)
def test_signature_sensitive_to_literal_change(spec, key, agg, join):
    column, op, value = spec[0]
    changed = [(column, op, value + 1000)] + list(spec[1:])
    a = normalize(apply_rewrites(compile_plan(build_sql(spec, key, agg, join))))
    b = normalize(apply_rewrites(compile_plan(
        build_sql(changed, key, agg, join))))
    assert strict_signature(a) != strict_signature(b)


# --------------------------------------------------------------------- #
# rewrite correctness


@SETTINGS
@given(predicates, group_keys, aggregates, join_flags)
def test_rewrites_preserve_results(spec, key, agg, join):
    sql = build_sql(spec, key, agg, join)
    raw = compile_plan(sql)
    rewritten = normalize(apply_rewrites(raw))
    assert run_plan(raw) == run_plan(rewritten)


@SETTINGS
@given(predicates, group_keys, aggregates, join_flags)
def test_reuse_preserves_results(spec, key, agg, join):
    """Materialize a random subexpression, re-match it, compare results."""
    from repro.optimizer import OptimizerContext, optimize, Annotation
    from repro.signatures import enumerate_subexpressions, signature_tag
    from repro.storage import ViewStore

    sql = build_sql(spec, key, agg, join)
    plan = normalize(apply_rewrites(compile_plan(sql)))
    expected = run_plan(plan)

    subs = [s for s in enumerate_subexpressions(plan)
            if s.height >= 1 and s.eligible]
    if not subs:
        return
    target = subs[len(subs) // 2]
    ctx = OptimizerContext(catalog=CATALOG, view_store=ViewStore(),
                           annotations={target.recurring: Annotation(
                               target.recurring, signature_tag(target.recurring))})
    first = optimize(plan, ctx, now=0.0)
    result_first = EXECUTOR.execute(first.plan)
    for spool in result_first.spooled:
        ctx.view_store.seal(spool.signature, 0.5, spool.row_count,
                            spool.size_bytes)
    second = optimize(plan, ctx, now=1.0)
    rows_second = sorted(tuple(sorted(r.items()))
                         for r in EXECUTOR.execute(second.plan).rows)
    assert sorted(tuple(sorted(r.items()))
                  for r in result_first.rows) == expected
    assert rows_second == expected


# --------------------------------------------------------------------- #
# bloom filter / containment soundness


@SETTINGS
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
       st.floats(min_value=0.001, max_value=0.2))
def test_bloom_never_false_negative(items, rate):
    bloom = BloomFilter(len(items), false_positive_rate=rate)
    for item in items:
        bloom.add(item)
    assert all(item in bloom for item in items)


range_specs = st.tuples(st.sampled_from(["<", "<=", ">", ">=", "="]),
                        st.integers(-20, 20))


@SETTINGS
@given(range_specs, range_specs, st.lists(st.integers(-25, 25), min_size=20,
                                          max_size=60))
def test_containment_soundness(general_spec, specific_spec, samples):
    """If the checker claims containment, no sample value refutes it."""
    checker = ContainmentChecker()
    gop, gval = general_spec
    sop, sval = specific_spec
    general = BinaryOp(gop, ColumnRef("x"), Literal(gval))
    specific = BinaryOp(sop, ColumnRef("x"), Literal(sval))
    if checker.contains(general, specific):
        for value in samples:
            row = {"x": value}
            if specific.evaluate(row):
                assert general.evaluate(row)


# --------------------------------------------------------------------- #
# selection / scheduling / percentile invariants


candidates_strategy = st.lists(
    st.tuples(st.integers(2, 20),           # frequency
              st.integers(1, 5),            # instances
              st.integers(1, 500),          # avg_rows
              st.integers(8, 100_000),      # avg_bytes
              st.floats(min_value=1.0, max_value=1e6)),  # avg_work
    min_size=0, max_size=30)


@SETTINGS
@given(candidates_strategy, st.integers(0, 200_000))
def test_greedy_never_exceeds_budget(specs, budget):
    candidates = []
    for index, (freq, inst, rows, size, work) in enumerate(specs):
        inst = min(inst, freq)
        candidates.append(ReuseCandidate(
            recurring=f"r{index}", tag=f"t{index}", operator="Join",
            height=2, frequency=freq, instances=inst, distinct_jobs=freq,
            avg_rows=rows, avg_bytes=size, avg_work=work,
            virtual_clusters=frozenset({"vc"}),
            instance_times=tuple((0.0,) * (freq // inst + 1)
                                 for _ in range(inst))))
    policy = SelectionPolicy(storage_budget_bytes=budget,
                             min_reuses_per_epoch=0.0)
    result = greedy_select(candidates, policy)
    assert result.storage_used <= budget
    assert all(c.benefit > 0 for c in result.selected)


@SETTINGS
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                max_size=40),
       st.floats(min_value=0, max_value=1e5))
def test_effective_frequency_bounds(times, lag):
    effective = effective_frequency(tuple(sorted(times)), lag)
    assert 1 <= effective <= len(times)


@SETTINGS
@given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False), min_size=1, max_size=50),
       st.floats(min_value=0, max_value=100))
def test_percentile_within_bounds(values, pct):
    result = percentile(values, pct)
    assert min(values) <= result <= max(values)


@SETTINGS
@given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
def test_percentile_monotone_in_pct(values):
    p25 = percentile(values, 25)
    p50 = percentile(values, 50)
    p75 = percentile(values, 75)
    assert p25 <= p50 <= p75
