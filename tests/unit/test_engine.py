"""Unit tests for the engine facade and the insights service."""

import pytest

from repro.catalog import schema_of
from repro.common.errors import InsightsError
from repro.engine import ScopeEngine
from repro.insights import InsightsService
from repro.optimizer.context import Annotation
from repro.plan import PlanBuilder, normalize
from repro.plan.logical import Join
from repro.signatures import enumerate_subexpressions
from repro.sql import parse


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("Sales", [("CustomerId", "int"), ("Price", "float"),
                            ("Day", "str")]),
        [dict(CustomerId=i % 5, Price=float(i), Day="d0")
         for i in range(50)])
    eng.register_table(
        schema_of("Customer", [("CustomerId", "int"), ("MktSegment", "str")]),
        [dict(CustomerId=i, MktSegment="Asia" if i % 2 else "Europe")
         for i in range(5)])
    return eng


SQL = ("SELECT CustomerId, SUM(Price) AS s FROM Sales JOIN Customer "
       "WHERE MktSegment = 'Asia' GROUP BY CustomerId")


def annotate_join(engine, sql=SQL):
    from repro.optimizer.rules import apply_rewrites
    plan = normalize(apply_rewrites(PlanBuilder(engine.catalog).build(parse(sql))))
    subs = enumerate_subexpressions(plan, engine.signature_salt)
    join = max((s for s in subs if isinstance(s.plan, Join)),
               key=lambda s: s.height)
    engine.insights.publish([Annotation(join.recurring, join.tag)])
    return join


class TestEngineLifecycle:
    def test_build_then_reuse_same_results(self, engine):
        annotate_join(engine)
        first = engine.run_sql(SQL)
        second = engine.run_sql(SQL, now=1.0)
        assert first.compiled.built_views == 1
        assert second.compiled.reused_views == 1
        assert sorted(map(repr, first.rows)) == sorted(map(repr, second.rows))

    def test_compile_fetches_annotations_with_latency(self, engine):
        annotate_join(engine)
        compiled = engine.compile(SQL)
        assert compiled.tags
        assert compiled.compile_latency > 0

    def test_views_disabled_per_job(self, engine):
        annotate_join(engine)
        run = engine.run_sql(SQL, reuse_enabled=False)
        assert run.compiled.built_views == 0
        assert run.compiled.compile_latency == 0.0

    def test_bulk_update_invalidates_views(self, engine):
        annotate_join(engine)
        engine.run_sql(SQL)
        engine.bulk_update("Sales", [dict(CustomerId=1, Price=9.0, Day="d1")])
        run = engine.run_sql(SQL, now=2.0)
        assert run.compiled.reused_views == 0
        assert run.compiled.built_views == 1  # rebuilt over new stream

    def test_gdpr_forget_invalidates_and_filters(self, engine):
        annotate_join(engine)
        engine.run_sql(SQL)
        engine.gdpr_forget("Sales", lambda row: row["CustomerId"] != 1)
        run = engine.run_sql(SQL, now=2.0)
        assert run.compiled.reused_views == 0
        assert all(r["CustomerId"] != 1 for r in run.rows)

    def test_runtime_version_change_invalidates_everything(self, engine):
        annotate_join(engine)
        engine.run_sql(SQL)
        engine.set_runtime_version("scope-r2")
        run = engine.run_sql(SQL, now=2.0)
        assert run.compiled.reused_views == 0
        # Old annotations were salted with the old version: no builds either.
        assert run.compiled.built_views == 0

    def test_deferred_sealing(self, engine):
        annotate_join(engine)
        compiled = engine.compile(SQL)
        run = engine.execute(compiled, now=0.0, seal_views=False)
        assert run.sealed_views == []
        other = engine.run_sql(SQL, now=1.0)
        assert other.compiled.reused_views == 0  # still unsealed
        signature = run.result.spooled[0].signature
        engine.seal_spooled(run, signature, at=2.0)
        third = engine.run_sql(SQL, now=3.0)
        assert third.compiled.reused_views == 1

    def test_history_recorded_after_execution(self, engine):
        engine.run_sql(SQL)
        assert len(engine.history) > 0

    def test_insights_kill_switch_stops_reuse(self, engine):
        annotate_join(engine)
        engine.run_sql(SQL)
        engine.insights.enabled = False
        run = engine.run_sql(SQL, now=1.0)
        assert run.compiled.reused_views == 0

    def test_job_ids_unique(self, engine):
        a = engine.compile(SQL)
        b = engine.compile(SQL)
        assert a.job_id != b.job_id


class TestInsightsService:
    def test_publish_and_fetch_by_tag(self):
        service = InsightsService()
        service.publish([Annotation("r1", "tagA"), Annotation("r2", "tagB")])
        result = service.fetch_annotations(["tagA"])
        assert set(result) == {"r1"}

    def test_fetch_caches_tags(self):
        service = InsightsService()
        service.publish([Annotation("r1", "tagA")])
        service.fetch_annotations(["tagA"])
        first_latency = service.last_fetch_latency
        service.fetch_annotations(["tagA"])
        assert service.last_fetch_latency < first_latency
        assert service.metrics.cache_hits == 1

    def test_publish_replaces_previous_generation(self):
        service = InsightsService()
        service.publish([Annotation("r1", "tagA")])
        service.publish([Annotation("r2", "tagB")])
        assert service.fetch_annotations(["tagA"]) == {}
        assert set(service.fetch_annotations(["tagB"])) == {"r2"}

    def test_disabled_service_serves_nothing(self):
        service = InsightsService()
        service.publish([Annotation("r1", "tagA")])
        service.enabled = False
        assert service.fetch_annotations(["tagA"]) == {}

    def test_lock_exclusive(self):
        service = InsightsService()
        assert service.acquire_view_lock("sig", "job1")
        assert not service.acquire_view_lock("sig", "job2")
        assert service.metrics.locks_denied == 1

    def test_lock_reentrant_for_holder(self):
        service = InsightsService()
        assert service.acquire_view_lock("sig", "job1")
        assert service.acquire_view_lock("sig", "job1")

    def test_release_by_wrong_holder_raises(self):
        service = InsightsService()
        service.acquire_view_lock("sig", "job1")
        with pytest.raises(InsightsError):
            service.release_view_lock("sig", "job2")

    def test_report_available_releases_lock(self):
        service = InsightsService()
        service.acquire_view_lock("sig", "job1")
        service.report_view_available("sig", "job1")
        assert service.lock_holder("sig") is None
        assert service.acquire_view_lock("sig", "job2")

    def test_disabled_service_denies_locks(self):
        service = InsightsService()
        service.enabled = False
        assert not service.acquire_view_lock("sig", "job1")

    def test_release_unheld_lock_is_noop(self):
        InsightsService().release_view_lock("sig", "job1")
