"""Unit tests for the co-simulation runner's internals."""

import pytest

from repro.catalog import schema_of
from repro.cluster import JobTelemetry
from repro.core import SimulationConfig, SimulationReport, record_job_into
from repro.engine import ScopeEngine
from repro.plan import Spool, ViewScan
from repro.workload import WorkloadRepository


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 4, v=float(i)) for i in range(40)])
    eng.register_table(
        schema_of("D", [("k", "int"), ("n", "str")]),
        [dict(k=i, n=f"x{i}") for i in range(4)])
    return eng


SQL = "SELECT n, SUM(v) AS s FROM T JOIN D GROUP BY n"


def record(engine, run, repository=None, full_work=None, now=0.0):
    repository = repository if repository is not None else WorkloadRepository()
    record_job_into(repository, run, now,
                    virtual_cluster="vc1", template_id="t1",
                    pipeline_id="p1", salt=engine.signature_salt,
                    full_work=full_work)
    return repository


class TestRecordJobInto:
    def test_tree_structure_recorded(self, engine):
        run = engine.run_sql(SQL, reuse_enabled=False)
        repository = record(engine, run)
        records = repository.subexpressions
        roots = [r for r in records if r.parent_node_id is None]
        assert len(roots) == 1
        by_node = {r.node_id: r for r in records}
        for r in records:
            if r.parent_node_id is not None:
                assert r.parent_node_id in by_node

    def test_work_is_monotone_up_the_tree(self, engine):
        run = engine.run_sql(SQL, reuse_enabled=False)
        records = record(engine, run).subexpressions
        by_node = {r.node_id: r for r in records}
        for r in records:
            if r.parent_node_id is not None:
                assert by_node[r.parent_node_id].work >= r.work

    def test_input_datasets_collected(self, engine):
        run = engine.run_sql(SQL, reuse_enabled=False)
        repository = record(engine, run)
        assert repository.jobs[0].input_datasets == ("D", "T")
        root = next(r for r in repository.subexpressions
                    if r.parent_node_id is None)
        assert root.input_datasets == ("D", "T")

    def test_spool_is_transparent_in_records(self, engine):
        from repro.optimizer.context import Annotation
        from repro.plan import PlanBuilder, normalize
        from repro.optimizer.rules import apply_rewrites
        from repro.signatures import enumerate_subexpressions
        from repro.sql import parse

        plan = normalize(apply_rewrites(
            PlanBuilder(engine.catalog).build(parse(SQL))))
        subs = enumerate_subexpressions(plan, engine.signature_salt)
        join = max((s for s in subs if s.operator == "Join"),
                   key=lambda s: s.height)
        engine.insights.publish([Annotation(join.recurring, join.tag)])
        run = engine.run_sql(SQL)
        assert any(isinstance(n, Spool) for n in run.compiled.plan.walk())
        records = record(engine, run).subexpressions
        assert not any(r.operator == "Spool" for r in records)

    def test_viewscan_inherits_full_work(self, engine):
        from repro.optimizer.context import Annotation
        from repro.plan import PlanBuilder, normalize
        from repro.optimizer.rules import apply_rewrites
        from repro.signatures import enumerate_subexpressions
        from repro.sql import parse

        plan = normalize(apply_rewrites(
            PlanBuilder(engine.catalog).build(parse(SQL))))
        subs = enumerate_subexpressions(plan, engine.signature_salt)
        join = max((s for s in subs if s.operator == "Join"),
                   key=lambda s: s.height)
        engine.insights.publish([Annotation(join.recurring, join.tag)])

        full_work = {}
        repository = WorkloadRepository()
        producer = engine.run_sql(SQL)
        record(engine, producer, repository, full_work)
        reuser = engine.run_sql(SQL, now=1.0)
        assert any(isinstance(n, ViewScan) for n in reuser.compiled.plan.walk())
        record(engine, reuser, repository, full_work, now=1.0)

        occurrences = repository.occurrences(join.recurring)
        assert len(occurrences) == 2
        producer_work = occurrences[0].work
        reuser_work = occurrences[1].work
        # The reusing instance records the compute the view STANDS FOR,
        # not the trivial cost of scanning it.
        assert reuser_work == pytest.approx(producer_work, rel=0.5)
        assert reuser_work > 0

    def test_join_algorithm_detail_recorded(self, engine):
        run = engine.run_sql(SQL, reuse_enabled=False)
        records = record(engine, run).subexpressions
        join = next(r for r in records if r.operator == "Join")
        assert join.detail in ("hash", "merge", "loop")


class TestSimulationReport:
    def make_report(self):
        telemetry = []
        for day in range(3):
            for i in range(2):
                t = JobTelemetry(job_id=f"d{day}j{i}", virtual_cluster="vc",
                                 submit_time=day * 86400.0 + i)
                t.processing_time = 10.0 * (day + 1)
                telemetry.append(t)
        return SimulationReport(
            config=SimulationConfig(days=3),
            telemetry=telemetry,
            repository=WorkloadRepository(),
            views_created=5, views_reused=20)

    def test_total(self):
        report = self.make_report()
        assert report.total("processing_time") == 2 * (10 + 20 + 30)

    def test_daily_buckets(self):
        report = self.make_report()
        assert report.daily("processing_time") == {0: 20.0, 1: 40.0, 2: 60.0}

    def test_cumulative_daily(self):
        report = self.make_report()
        assert report.cumulative_daily("processing_time") == [
            (0, 20.0), (1, 60.0), (2, 120.0)]
