"""Unit tests for stage graphs and the cluster simulator."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.cluster import (
    ClusterSimulator,
    SimulatedJob,
    Stage,
    StageGraph,
    build_stage_graph,
)
from repro.executor import Executor
from repro.optimizer import CardinalityEstimator
from repro.plan import PlanBuilder, Spool, normalize
from repro.sql import parse
from repro.storage import DataStore


def make_graph(*stage_specs):
    """stage_specs: (work, partitions, deps, is_writer)"""
    graph = StageGraph()
    for work, partitions, deps, writer in stage_specs:
        stage = graph.new_stage()
        stage.work = work
        stage.partitions = partitions
        stage.dependencies = list(deps)
        stage.is_spool_writer = writer
        if writer:
            stage.spool_signature = f"sig{stage.stage_id}"
    return graph


def job(graph, job_id="j1", vc="vc1", submit=0.0, **kwargs):
    return SimulatedJob(job_id=job_id, virtual_cluster=vc,
                        submit_time=submit, graph=graph, **kwargs)


class TestStageGraphConstruction:
    @pytest.fixture
    def env(self):
        catalog = Catalog()
        store = DataStore()
        version = catalog.register(schema_of("T", [
            ("k", "int"), ("v", "float")]), 100)
        store.put(version.guid, [dict(k=i % 10, v=float(i))
                                 for i in range(100)])
        version = catalog.register(schema_of("D", [
            ("k", "int"), ("name", "str")]), 10)
        store.put(version.guid, [dict(k=i, name=f"n{i}") for i in range(10)])
        return catalog, store

    def lower(self, env, sql, spool_sub=None):
        catalog, store = env
        plan = normalize(PlanBuilder(catalog).build(parse(sql)))
        if spool_sub is not None:
            plan = Spool(plan, "sig", "views/sig")
        result = Executor(store).execute(plan)
        estimator = CardinalityEstimator(catalog)
        return build_stage_graph(plan, result, estimator,
                                 rows_per_partition=10, max_partitions=8)

    def test_pipelined_ops_fuse_into_scan_stage(self, env):
        graph = self.lower(env, "SELECT k FROM T WHERE v > 5")
        assert len(graph.stages) == 1
        assert {"Scan", "Filter", "Project"} <= set(graph.stages[0].operators)

    def test_join_creates_stage_with_two_deps(self, env):
        graph = self.lower(env, "SELECT name FROM T JOIN D")
        join_stage = next(s for s in graph.stages if "Join" in s.operators)
        assert len(join_stage.dependencies) == 2

    def test_group_by_breaks_stage(self, env):
        graph = self.lower(env, "SELECT k, SUM(v) FROM T GROUP BY k")
        assert len(graph.stages) == 2

    def test_spool_writer_is_parallel_stage(self, env):
        graph = self.lower(env, "SELECT k FROM T WHERE v > 5", spool_sub=True)
        writers = [s for s in graph.stages if s.is_spool_writer]
        assert len(writers) == 1
        # The writer depends on the child stage but nothing depends on it.
        writer = writers[0]
        assert writer.dependencies
        assert all(writer.stage_id not in s.dependencies
                   for s in graph.stages)

    def test_partitions_follow_estimates(self, env):
        graph = self.lower(env, "SELECT k FROM T")
        assert graph.stages[0].partitions == 8  # 100 rows / 10, capped at 8

    def test_critical_path_leq_total(self, env):
        graph = self.lower(env, "SELECT name, SUM(v) FROM T JOIN D GROUP BY name")
        assert graph.critical_path_work() <= graph.total_work


class TestSimulator:
    def test_single_stage_job(self):
        graph = make_graph((1000.0, 2, [], False))
        sim = ClusterSimulator(total_containers=10, work_rate=100.0,
                               container_startup=1.0)
        sim.submit(job(graph))
        (t,) = sim.run()
        assert t.latency == pytest.approx(1.0 + 1000.0 / (100.0 * 2))
        assert t.containers == 2
        assert t.processing_time == pytest.approx(2 * t.latency)

    def test_dependencies_respected(self):
        graph = make_graph((100.0, 1, [], False), (100.0, 1, [0], False))
        sim = ClusterSimulator(total_containers=4, work_rate=100.0,
                               container_startup=0.0)
        sim.submit(job(graph))
        (t,) = sim.run()
        assert t.latency == pytest.approx(2.0)

    def test_parallel_roots_overlap(self):
        graph = make_graph((100.0, 1, [], False), (100.0, 1, [], False),
                           (0.0, 1, [0, 1], False))
        sim = ClusterSimulator(total_containers=4, work_rate=100.0,
                               container_startup=0.0)
        sim.submit(job(graph))
        (t,) = sim.run()
        assert t.latency == pytest.approx(1.0)

    def test_bonus_containers_beyond_quota(self):
        graph = make_graph((1000.0, 8, [], False))
        sim = ClusterSimulator(total_containers=10, vc_quotas={"vc1": 2},
                               work_rate=100.0, container_startup=0.0)
        sim.submit(job(graph))
        (t,) = sim.run()
        assert t.containers == 8
        assert t.bonus_processing_time > 0
        assert t.bonus_processing_time == pytest.approx(
            t.processing_time * 6 / 8)

    def test_no_bonus_when_cluster_exactly_quota(self):
        graph = make_graph((1000.0, 8, [], False))
        sim = ClusterSimulator(total_containers=2, vc_quotas={"vc1": 2},
                               work_rate=100.0, container_startup=0.0)
        sim.submit(job(graph))
        (t,) = sim.run()
        assert t.bonus_processing_time == 0.0
        assert t.containers == 2

    def test_spool_seal_callback_fires_before_job_end(self):
        graph = make_graph((100.0, 1, [], False),
                           (500.0, 1, [0], False),
                           (10.0, 1, [0], True))
        sealed = []
        sim = ClusterSimulator(total_containers=4, work_rate=100.0,
                               container_startup=0.0)
        sim.submit(job(graph, on_spool_sealed=lambda s, t: sealed.append(t)))
        (t,) = sim.run()
        assert sealed and sealed[0] < t.finish_time

    def test_admission_queue_and_queue_length(self):
        graphs = [make_graph((1000.0, 1, [], False)) for _ in range(3)]
        sim = ClusterSimulator(total_containers=10, work_rate=100.0,
                               container_startup=0.0, vc_job_slots=1)
        for i, g in enumerate(graphs):
            sim.submit(job(g, job_id=f"j{i}", submit=float(i)))
        results = sim.run()
        by_id = {t.job_id: t for t in results}
        assert by_id["j0"].queue_length_at_submit == 0
        assert by_id["j1"].queue_length_at_submit == 0  # j0 running, 0 waiting
        assert by_id["j2"].queue_length_at_submit == 1  # j1 waiting
        assert by_id["j1"].queue_wait > 0

    def test_jobs_in_separate_vcs_do_not_queue_on_each_other(self):
        sim = ClusterSimulator(total_containers=10, work_rate=100.0,
                               container_startup=0.0, vc_job_slots=1)
        sim.submit(job(make_graph((1000.0, 1, [], False)), "a", "vc1", 0.0))
        sim.submit(job(make_graph((1000.0, 1, [], False)), "b", "vc2", 1.0))
        results = sim.run()
        assert all(t.queue_wait == 0 for t in results)

    def test_job_overhead_delays_start(self):
        graph = make_graph((100.0, 1, [], False))
        sim = ClusterSimulator(total_containers=4, work_rate=100.0,
                               container_startup=0.0,
                               job_overhead_seconds=5.0)
        sim.submit(job(graph))
        (t,) = sim.run()
        assert t.latency == pytest.approx(6.0)

    def test_arrival_factory_can_decline(self):
        sim = ClusterSimulator(total_containers=4)
        sim.add_arrival(1.0, lambda now: None)
        assert sim.run() == []

    def test_on_complete_callback(self):
        done = []
        graph = make_graph((10.0, 1, [], False))
        sim = ClusterSimulator(total_containers=4, work_rate=100.0,
                               container_startup=0.0)
        sim.submit(job(graph, on_complete=lambda j, t: done.append(t.job_id)))
        sim.run()
        assert done == ["j1"]

    def test_deterministic_across_runs(self):
        def run_once():
            sim = ClusterSimulator(total_containers=6, work_rate=50.0,
                                   container_startup=0.5, vc_job_slots=2)
            for i in range(8):
                graph = make_graph((500.0 + i * 100, 3, [], False),
                                   (200.0, 2, [0], False))
                sim.submit(job(graph, job_id=f"j{i}",
                               vc=f"vc{i % 2}", submit=float(i)))
            return [(t.job_id, t.finish_time, t.containers)
                    for t in sim.run()]

        assert run_once() == run_once()

    def test_zero_container_cluster_rejected(self):
        from repro.common.errors import SchedulingError
        with pytest.raises(SchedulingError):
            ClusterSimulator(total_containers=0)

    def test_empty_graph_completes_instantly(self):
        sim = ClusterSimulator(total_containers=2, container_startup=0.0)
        sim.submit(job(StageGraph(), "empty"))
        (t,) = sim.run()
        assert t.latency == 0.0
