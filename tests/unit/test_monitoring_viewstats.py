"""Unit tests for the query monitor and view statistics."""

import pytest

from repro.catalog import schema_of
from repro.common.errors import StorageError
from repro.engine import ScopeEngine
from repro.engine.monitoring import QueryMonitor, render_plan
from repro.extensions.view_stats import (
    compute_view_statistics,
    render_statistics,
)
from repro.optimizer.context import Annotation
from repro.plan import PlanBuilder, normalize
from repro.optimizer.rules import apply_rewrites
from repro.signatures import enumerate_subexpressions
from repro.sql import parse


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("T", [("k", "int"), ("v", "float"), ("name", "str")]),
        [dict(k=i % 5, v=float(i), name=None if i % 7 == 0 else f"n{i % 3}")
         for i in range(70)])
    return eng


SQL = "SELECT k, SUM(v) AS s FROM T WHERE v > 5 GROUP BY k"


def annotate(engine):
    plan = normalize(apply_rewrites(
        PlanBuilder(engine.catalog).build(parse(SQL))))
    subs = enumerate_subexpressions(plan, engine.signature_salt)
    # Annotate the Filter(Scan) fragment: its view keeps the raw columns,
    # which the statistics tests inspect.
    target = min((s for s in subs if s.height >= 1 and s.eligible),
                 key=lambda s: s.height)
    engine.insights.publish([Annotation(target.recurring, target.tag)])


class TestQueryMonitor:
    def test_observe_compile_and_run(self, engine):
        annotate(engine)
        monitor = QueryMonitor()
        compiled = engine.compile(SQL)
        monitor.observe_compile(compiled, at=1.0)
        run = engine.execute(compiled)
        monitor.observe_run(run)
        entry = monitor.job(compiled.job_id)
        assert entry.views_built == 1
        assert entry.sealed_views == run.sealed_views
        assert entry.touched_by_cloudviews

    def test_builder_shows_positive_cost_delta(self, engine):
        annotate(engine)
        monitor = QueryMonitor()
        entry = monitor.observe_compile(engine.compile(SQL))
        assert entry.cost_delta_percent > 0  # first-hit slowdown

    def test_reuser_shows_negative_cost_delta(self, engine):
        annotate(engine)
        monitor = QueryMonitor()
        engine.run_sql(SQL)
        entry = monitor.observe_compile(engine.compile(SQL, now=1.0))
        assert entry.views_reused == 1
        assert entry.cost_delta_percent < 0

    def test_render_plan_marks_cloudview_sites(self, engine):
        annotate(engine)
        builder = engine.compile(SQL)
        assert "materializes CloudView" in render_plan(builder.plan)
        engine.execute(builder)
        reuser = engine.compile(SQL, now=1.0)
        assert "reused CloudView" in render_plan(reuser.plan)

    def test_summary_lists_all_jobs_in_order(self, engine):
        monitor = QueryMonitor()
        a = engine.compile(SQL, reuse_enabled=False)
        b = engine.compile(SQL, reuse_enabled=False)
        monitor.observe_compile(b, at=2.0)
        monitor.observe_compile(a, at=1.0)
        summary = monitor.render_summary()
        assert summary.index(a.job_id) < summary.index(b.job_id)

    def test_touched_jobs_filter(self, engine):
        annotate(engine)
        monitor = QueryMonitor()
        monitor.observe_compile(engine.compile(SQL))
        monitor.observe_compile(engine.compile(SQL, reuse_enabled=False))
        assert len(monitor.touched_jobs()) == 1

    def test_render_unknown_job(self):
        assert "no monitored job" in QueryMonitor().render_job("nope")


class TestViewStatistics:
    def _seal_view(self, engine):
        annotate(engine)
        run = engine.run_sql(SQL)
        return run.sealed_views[0]

    def test_statistics_shapes(self, engine):
        signature = self._seal_view(engine)
        stats = compute_view_statistics(engine, signature, now=1.0)
        assert stats.rows > 0
        view = engine.view_store.lookup(signature, now=1.0)
        assert set(stats.columns) == set(view.schema)

    def test_numeric_column_statistics(self, engine):
        signature = self._seal_view(engine)
        stats = compute_view_statistics(engine, signature, now=1.0)
        v = stats.columns["v"]
        assert v.nulls == 0
        assert v.minimum == 6.0          # filter kept v > 5
        assert v.mean == pytest.approx(
            sum(range(6, 70)) / len(range(6, 70)))

    def test_null_accounting(self, engine):
        signature = self._seal_view(engine)
        stats = compute_view_statistics(engine, signature, now=1.0)
        name = stats.columns["name"]
        assert name.nulls > 0
        assert 0.0 < name.null_fraction < 1.0
        assert name.distinct <= 3

    def test_unavailable_view_raises(self, engine):
        with pytest.raises(StorageError):
            compute_view_statistics(engine, "missing", now=0.0)

    def test_render_statistics(self, engine):
        signature = self._seal_view(engine)
        stats = compute_view_statistics(engine, signature, now=1.0)
        text = render_statistics(stats)
        assert "column" in text and "distinct" in text
        assert signature[:12] in text
