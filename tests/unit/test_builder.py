"""Unit tests for AST -> logical-plan lowering and name binding."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.common.errors import BindError, PlanError
from repro.plan import (
    Distinct,
    Filter,
    GroupBy,
    Join,
    Limit,
    PlanBuilder,
    Process,
    Project,
    Scan,
    Sort,
    Union,
)
from repro.sql import parse


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(schema_of("Sales", [
        ("CustomerId", "int"), ("PartId", "int"), ("Price", "float"),
        ("Quantity", "int"), ("Discount", "float")]), 100)
    cat.register(schema_of("Customer", [
        ("CustomerId", "int"), ("MktSegment", "str"), ("Name", "str")]), 50)
    cat.register(schema_of("Parts", [
        ("PartId", "int"), ("Brand", "str"), ("PartType", "str")]), 20)
    return cat


def build(catalog, sql, params=None):
    return PlanBuilder(catalog, params).build(parse(sql))


def test_scan_binds_current_guid(catalog):
    plan = build(catalog, "SELECT CustomerId FROM Customer")
    scan = plan.children()[0]
    assert isinstance(scan, Scan)
    assert scan.stream_guid == catalog.current_guid("Customer")


def test_guid_rebinds_after_bulk_update(catalog):
    before = build(catalog, "SELECT CustomerId FROM Customer")
    catalog.bulk_update("Customer")
    after = build(catalog, "SELECT CustomerId FROM Customer")
    assert before.children()[0].stream_guid != after.children()[0].stream_guid


def test_projection_names_and_aliases(catalog):
    plan = build(catalog, "SELECT Name AS n, MktSegment FROM Customer")
    assert plan.schema == ("n", "MktSegment")


def test_star_expansion(catalog):
    plan = build(catalog, "SELECT * FROM Parts")
    assert plan.schema == ("PartId", "Brand", "PartType")


def test_unknown_dataset_raises(catalog):
    from repro.common.errors import CatalogError
    with pytest.raises(CatalogError):
        build(catalog, "SELECT a FROM Nope")


def test_unknown_column_raises(catalog):
    with pytest.raises(BindError):
        build(catalog, "SELECT Nope FROM Customer")


def test_natural_join_on_shared_column(catalog):
    plan = build(catalog, "SELECT Name FROM Sales JOIN Customer")
    joins = [n for n in plan.walk() if isinstance(n, Join)]
    assert len(joins) == 1
    join = joins[0]
    assert [k.to_sql() for k in join.left_keys] == ["CustomerId"]
    assert join.drop_right  # the duplicate right-side key is elided
    # Shared column resolves to a single output key.
    assert "CustomerId" in join.schema
    assert sum(1 for c in join.schema if c.endswith("CustomerId")) == 1


def test_explicit_on_join_decomposed(catalog):
    plan = build(
        catalog,
        "SELECT Name FROM Sales s JOIN Customer c "
        "ON s.CustomerId = c.CustomerId AND c.MktSegment = 'Asia'")
    join = next(n for n in plan.walk() if isinstance(n, Join))
    assert len(join.left_keys) == 1
    assert join.residual is not None  # the segment predicate stays residual


def test_ambiguous_column_requires_qualifier(catalog):
    with pytest.raises(BindError):
        build(catalog,
              "SELECT CustomerId FROM Sales s JOIN Customer c "
              "ON s.CustomerId = c.CustomerId")


def test_qualified_reference_resolves_renamed_column(catalog):
    plan = build(catalog,
                 "SELECT c.CustomerId FROM Sales s JOIN Customer c "
                 "ON s.CustomerId = c.CustomerId")
    assert plan.schema == ("CustomerId",)


def test_duplicate_alias_rejected(catalog):
    with pytest.raises(BindError):
        build(catalog, "SELECT Name FROM Customer c JOIN Customer c")


def test_group_by_lowering(catalog):
    plan = build(catalog,
                 "SELECT CustomerId, AVG(Price) FROM Sales GROUP BY CustomerId")
    assert isinstance(plan, Project)
    group = plan.child
    assert isinstance(group, GroupBy)
    assert [k.name for k in group.keys] == ["CustomerId"]
    assert len(group.aggregates) == 1


def test_global_aggregate_without_group_by(catalog):
    plan = build(catalog, "SELECT SUM(Price) FROM Sales")
    group = next(n for n in plan.walk() if isinstance(n, GroupBy))
    assert group.keys == ()


def test_having_becomes_filter_over_group(catalog):
    plan = build(catalog,
                 "SELECT CustomerId FROM Sales GROUP BY CustomerId "
                 "HAVING SUM(Quantity) > 5")
    assert isinstance(plan, Project)
    assert isinstance(plan.child, Filter)
    assert isinstance(plan.child.child, GroupBy)


def test_having_without_group_rejected(catalog):
    with pytest.raises(PlanError):
        build(catalog, "SELECT Price FROM Sales HAVING Price > 5")


def test_non_grouped_column_rejected(catalog):
    with pytest.raises(PlanError):
        build(catalog,
              "SELECT Price, SUM(Quantity) FROM Sales GROUP BY CustomerId")


def test_aggregate_in_where_rejected(catalog):
    with pytest.raises(PlanError):
        build(catalog, "SELECT Price FROM Sales WHERE SUM(Price) > 5")


def test_arithmetic_over_aggregates(catalog):
    plan = build(catalog,
                 "SELECT SUM(Price) / SUM(Quantity) FROM Sales")
    group = next(n for n in plan.walk() if isinstance(n, GroupBy))
    assert len(group.aggregates) == 2


def test_distinct_wraps_projection(catalog):
    plan = build(catalog, "SELECT DISTINCT MktSegment FROM Customer")
    assert isinstance(plan, Distinct)


def test_union_all(catalog):
    plan = build(catalog,
                 "SELECT Name FROM Customer UNION ALL SELECT Brand FROM Parts")
    assert isinstance(plan, Union)
    assert plan.all


def test_union_distinct_adds_distinct(catalog):
    plan = build(catalog,
                 "SELECT Name FROM Customer UNION SELECT Brand FROM Parts")
    assert isinstance(plan, Distinct)


def test_order_by_limit(catalog):
    plan = build(catalog,
                 "SELECT Name FROM Customer ORDER BY Name DESC LIMIT 3")
    assert isinstance(plan, Limit)
    assert isinstance(plan.child, Sort)
    assert plan.child.ascending == (False,)


def test_order_by_unknown_column_rejected(catalog):
    with pytest.raises(BindError):
        build(catalog, "SELECT Name FROM Customer ORDER BY Nope")


def test_subquery_in_from(catalog):
    plan = build(catalog,
                 "SELECT n FROM (SELECT Name AS n FROM Customer) AS s")
    assert plan.schema == ("n",)


def test_process_clause_lowered(catalog):
    plan = build(catalog,
                 "SELECT Name FROM Customer PROCESS USING Scrub DEPTH 2")
    assert isinstance(plan, Process)
    assert plan.udo_name == "Scrub"
    assert plan.dependency_depth == 2


def test_param_binding(catalog):
    plan = build(catalog,
                 "SELECT Name FROM Customer WHERE MktSegment = @seg",
                 params={"seg": "Asia"})
    flt = next(n for n in plan.walk() if isinstance(n, Filter))
    assert flt.predicate.right.value == "Asia"
    assert flt.predicate.right.param_name == "seg"


def test_duplicate_output_names_deduped(catalog):
    plan = build(catalog, "SELECT Name, Name FROM Customer")
    assert plan.schema == ("Name", "Name_1")
