"""Unit tests for the mini TPC-DS workload."""

import pytest

from repro.engine import ScopeEngine
from repro.workload.tpcds import (
    TPCDS_QUERIES,
    install_tpcds,
    run_tpcds_suite,
    tpcds_schemas,
)


@pytest.fixture(scope="module")
def engine():
    eng = ScopeEngine()
    install_tpcds(eng, scale_rows=800)
    return eng


class TestSchema:
    def test_all_five_tables(self, engine):
        names = {s.name for s in tpcds_schemas()}
        assert names == {"store_sales", "date_dim", "item", "customer",
                         "store"}
        for name in names:
            assert engine.catalog.has(name)

    def test_fact_table_scale(self, engine):
        assert engine.catalog.current_version("store_sales").row_count == 800

    def test_foreign_keys_resolve(self, engine):
        sales = engine.store.get(engine.catalog.current_guid("store_sales"))
        dates = {r["d_date_sk"] for r in engine.store.get(
            engine.catalog.current_guid("date_dim"))}
        items = {r["i_item_sk"] for r in engine.store.get(
            engine.catalog.current_guid("item"))}
        assert all(r["ss_sold_date_sk"] in dates for r in sales)
        assert all(r["ss_item_sk"] in items for r in sales)

    def test_data_deterministic(self):
        a, b = ScopeEngine(), ScopeEngine()
        install_tpcds(a, scale_rows=200, seed=5)
        install_tpcds(b, scale_rows=200, seed=5)
        assert a.store.get(a.catalog.current_guid("store_sales")) == \
            b.store.get(b.catalog.current_guid("store_sales"))


class TestQueries:
    def test_all_queries_compile_and_run(self, engine):
        for name, sql in TPCDS_QUERIES:
            run = engine.run_sql(sql, reuse_enabled=False)
            assert isinstance(run.rows, list), name

    def test_date_window_queries_share_fragment(self, engine):
        from repro.signatures import enumerate_subexpressions
        sharers = [sql for _, sql in TPCDS_QUERIES if "d_qoy" in sql]
        assert len(sharers) >= 6
        signature_sets = []
        for sql in sharers[:4]:
            compiled = engine.compile(sql, reuse_enabled=False)
            signature_sets.append({
                s.strict for s in enumerate_subexpressions(
                    compiled.optimized.logical, engine.signature_salt)})
        common = set.intersection(*signature_sets)
        assert common  # the shared date-window core

    def test_suite_counters(self, engine):
        result = run_tpcds_suite(engine, reuse_enabled=False)
        assert result["work"] > 0
        assert result["built"] == 0 and result["reused"] == 0
        assert set(result["results"]) == {name for name, _ in TPCDS_QUERIES}

    def test_brand_revenue_is_positive(self, engine):
        result = run_tpcds_suite(engine, reuse_enabled=False)
        rows = result["results"]["q3_brand_revenue"]
        assert rows
        assert all(r["revenue"] > 0 for r in rows)
