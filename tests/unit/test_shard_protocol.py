"""Unit tests: the shard wire protocol and signature-hash routing.

The framing contract (length-prefixed JSON over ``AF_UNIX``) is the
trust boundary of the sharded deployment: a clean EOF at a frame
boundary means "peer hung up", anything else truncated or oversized is
corruption and must surface as :class:`ShardError`, and worker-side
exceptions must cross the boundary *by name* so the router re-raises
the same taxonomy type the in-process service would have raised.
"""

import socket
import struct

import pytest

from repro.common.errors import (
    ConfigError,
    InsightsError,
    InsightsTimeout,
    ShardError,
    StorageError,
)
from repro.common.hashing import shard_for
from repro.shard.journal import shard_for_op
from repro.shard.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    error_payload,
    raise_remote,
    recv_frame,
    send_frame,
)
from repro.shard.router import tags_by_shard


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, pair):
        left, right = pair
        payload = {"id": 7, "method": "fetch_tags",
                   "params": {"tags": ["a", "b"], "n": 1.5}}
        send_frame(left, payload)
        assert recv_frame(right) == payload

    def test_multiple_frames_in_order(self, pair):
        left, right = pair
        for i in range(5):
            send_frame(left, {"id": i})
        assert [recv_frame(right)["id"] for _ in range(5)] == list(range(5))

    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None

    def test_eof_mid_body_raises(self, pair):
        left, right = pair
        body = b'{"id": 1}'
        left.sendall(HEADER.pack(len(body) + 10) + body)
        left.close()
        with pytest.raises(ShardError):
            recv_frame(right)

    def test_eof_mid_header_raises(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")
        left.close()
        with pytest.raises(ShardError):
            recv_frame(right)

    def test_oversized_header_is_corruption(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ShardError):
            recv_frame(right)

    def test_undecodable_body_raises(self, pair):
        left, right = pair
        body = b"\xff\xfe not json"
        left.sendall(HEADER.pack(len(body)) + body)
        with pytest.raises(ShardError):
            recv_frame(right)

    def test_non_object_body_raises(self, pair):
        left, right = pair
        body = b"[1, 2, 3]"
        left.sendall(HEADER.pack(len(body)) + body)
        with pytest.raises(ShardError):
            recv_frame(right)


class TestErrorsByName:
    @pytest.mark.parametrize("error,expected", [
        (StorageError("disk"), StorageError),
        (InsightsError("rpc"), InsightsError),
        (InsightsTimeout("slow"), InsightsTimeout),
        (ConfigError("bad"), ConfigError),
        (ShardError("dead"), ShardError),
    ])
    def test_taxonomy_round_trips(self, error, expected):
        with pytest.raises(expected, match=str(error)):
            raise_remote(error_payload(error))

    def test_unknown_type_degrades_to_shard_error(self):
        with pytest.raises(ShardError, match="boom"):
            raise_remote({"type": "KeyError", "message": "boom"})

    def test_missing_fields_degrade_to_shard_error(self):
        with pytest.raises(ShardError):
            raise_remote({})


class TestRouting:
    def test_shard_for_is_deterministic_and_in_range(self):
        for key in (f"sig-{i}" for i in range(50)):
            shard = shard_for(key, 4)
            assert shard == shard_for(key, 4)
            assert 0 <= shard < 4

    def test_single_shard_and_unsharded_collapse_to_zero(self):
        assert shard_for("anything", 1) == 0
        assert shard_for("anything", 0) == 0

    def test_keys_spread_across_shards(self):
        hits = {shard_for(f"sig-{i}", 4) for i in range(100)}
        assert hits == {0, 1, 2, 3}

    def test_tags_by_shard_partitions_preserving_order(self):
        tags = [f"t-{i}" for i in range(20)]
        groups = tags_by_shard(tags, 4)
        assert sorted(sum(groups.values(), [])) == sorted(tags)
        for shard, group in groups.items():
            assert group == [t for t in tags if shard_for(t, 4) == shard]

    def test_journal_ops_route_by_signature(self):
        assert (shard_for_op("sealed", {"signature": "s1"}, 4)
                == shard_for("s1", 4))
        assert (shard_for_op("created", {"view": {"signature": "s2"}}, 4)
                == shard_for("s2", 4))

    def test_global_journal_ops_route_to_shard_zero(self):
        assert shard_for_op("epoch", {"version": "v2", "epoch": 3}, 4) == 0
