"""Unit tests for the three rule packs, driven by deliberately corrupted
plans.

Operator constructors validate arity at build time, so every corruption
here goes through ``object.__setattr__`` — exactly the class of damage
(post-construction mutation, rewrite bugs) the analyzer exists to catch.
"""

import json

import pytest

from repro.analysis import AnalysisContext, Analyzer, default_rules
from repro.analysis.hooks import assert_stage_sound
from repro.analysis.signature_rules import probe_inputs, structural_key
from repro.catalog import Catalog, schema_of
from repro.common.errors import LintError
from repro.optimizer.context import OptimizerContext
from repro.optimizer.view_buildout import view_path_for
from repro.optimizer.view_matching import ViewMatch, view_scan_for
from repro.plan.expressions import ColumnRef, FuncCall, Literal
from repro.plan.logical import (
    Filter,
    GroupBy,
    Join,
    Process,
    Project,
    Scan,
    Spool,
    Union,
    ViewScan,
)
from repro.signatures.signature import strict_signature
from repro.storage.views import ViewStore


def scan(name="Sales", columns=("A", "B"), guid="guid-1"):
    return Scan(name, tuple(columns), stream_guid=guid)


def analyze(plan, rules=None, **ctx_fields):
    analyzer = Analyzer(rules=rules) if rules else Analyzer()
    return analyzer.analyze_plan(plan, AnalysisContext(**ctx_fields))


def rules_hit(report):
    return {f.rule for f in report.findings}


# --------------------------------------------------------------------- #
# pack 1: plan validation


def test_clean_plan_yields_no_findings():
    plan = Project(Filter(scan(), ColumnRef("A")), (ColumnRef("A"),), ("A",))
    report = analyze(plan, salt="v1")
    assert report.ok and not report.findings


def test_project_arity_corruption_detected():
    plan = Project(scan(), (ColumnRef("A"), ColumnRef("B")), ("A", "B"))
    object.__setattr__(plan, "names", ("A",))
    report = analyze(plan, salt="v1")
    assert "plan-project-arity" in rules_hit(report)
    assert not report.ok


def test_groupby_arity_corruption_detected():
    plan = GroupBy(scan(), (ColumnRef("A"),),
                   (FuncCall("SUM", (ColumnRef("B"),)),), ("A", "total"))
    object.__setattr__(plan, "names", ("A", "total", "extra"))
    report = analyze(plan, salt="v1")
    assert "plan-groupby-arity" in rules_hit(report)


def test_truncated_join_keys_detected():
    left = scan("L", ("A", "B"), "guid-l")
    right = scan("R", ("A", "C"), "guid-r")
    plan = Join(left, right, (ColumnRef("A"), ColumnRef("B")),
                (ColumnRef("A"), ColumnRef("C")))
    object.__setattr__(plan, "right_keys", (ColumnRef("A"),))
    report = analyze(plan, salt="v1")
    findings = [f for f in report.errors if f.rule == "plan-join-keys"]
    assert findings and "silently drop" in findings[0].message


def test_join_keys_must_resolve_against_own_side():
    left = scan("L", ("A",), "guid-l")
    right = scan("R", ("C",), "guid-r")
    plan = Join(left, right, (ColumnRef("A"),), (ColumnRef("C"),))
    # Swap a right-side key in: "C" does not exist on the left child.
    object.__setattr__(plan, "left_keys", (ColumnRef("C"),))
    report = analyze(plan, salt="v1")
    assert any(f.rule == "plan-join-keys" and "left" in f.message
               for f in report.errors)


def test_union_arity_mismatch_detected():
    a = scan("L", ("A", "B"), "guid-l")
    b = scan("R", ("A", "B"), "guid-r")
    plan = Union((a, b))
    object.__setattr__(plan, "inputs",
                       (a, scan("R2", ("A",), "guid-r2")))
    report = analyze(plan, salt="v1")
    assert "plan-union-arity" in rules_hit(report)


def test_unresolvable_filter_column_detected():
    plan = Filter(scan(columns=("A", "B")), ColumnRef("Missing"))
    report = analyze(plan, salt="v1")
    findings = [f for f in report.errors
                if f.rule == "plan-column-resolution"]
    assert findings and "Missing" in findings[0].message


def test_qualified_column_suffix_resolution_accepted():
    plan = Filter(scan(columns=("t.A", "t.B")), ColumnRef("A"))
    report = analyze(plan, salt="v1")
    assert "plan-column-resolution" not in rules_hit(report)


def test_viewscan_schema_drift_detected():
    store = ViewStore()
    definition = scan(columns=("A", "B"))
    sig = strict_signature(definition, "v1")
    store.begin_materialize(sig, view_path_for("vc", sig), ("A", "B"),
                            "vc", now=0.0, definition=definition)
    store.seal(sig, now=1.0, row_count=5, size_bytes=50)
    node = ViewScan(signature=sig, view_path=view_path_for("vc", sig),
                    columns=("A", "B"))
    object.__setattr__(node, "columns", ("A", "Wrong"))
    report = analyze(node, view_store=store, salt="v1", now=2.0)
    assert "plan-viewscan-schema" in rules_hit(report)


def test_view_scan_for_helper_agrees_with_store_schema():
    store = ViewStore()
    definition = scan(columns=("A", "B"))
    sig = strict_signature(definition, "v1")
    view = store.begin_materialize(sig, view_path_for("vc", sig),
                                   ("A", "B"), "vc", now=0.0,
                                   definition=definition,
                                   recurring_signature="rec")
    store.seal(sig, now=1.0, row_count=5, size_bytes=50)
    node = view_scan_for(view, definition.schema)
    report = analyze(node, view_store=store, salt="v1", now=2.0)
    assert "plan-viewscan-schema" not in rules_hit(report)


def test_spool_path_must_encode_signature():
    child = scan()
    sig = strict_signature(child, "v1")
    plan = Spool(child, signature=sig, view_path="cloudviews/vc/other")
    report = analyze(plan, salt="v1")
    assert any(f.rule == "plan-spool-wellformed" and "encode" in f.message
               for f in report.errors)


def test_spool_wrapping_spool_detected():
    child = scan()
    sig = strict_signature(child, "v1")
    inner = Spool(child, signature=sig,
                  view_path=view_path_for("vc", sig))
    outer = Spool(inner, signature=sig,
                  view_path=view_path_for("vc", sig))
    report = analyze(outer, salt="v1")
    messages = [f.message for f in report.errors
                if f.rule == "plan-spool-wellformed"]
    assert any("wraps another Spool" in m for m in messages)
    assert any("spooled twice" in m for m in messages)


# --------------------------------------------------------------------- #
# pack 2: signature soundness

class FlakyOp(Scan):
    """Scan subclass whose label changes per access: an op whose hash is
    non-deterministic (falls into the unknown-operator hash branch)."""

    _counter = [0]

    @property
    def op_label(self):
        self._counter[0] += 1
        return f"FlakyOp{self._counter[0]}"


class OpaqueOp(Scan):
    """Scan subclass hashed only by label: ignores its own fields, so its
    signature both collides across instances and misses GUID rewrites."""


def test_nondeterministic_hash_detected():
    report = analyze(Filter(FlakyOp("S", ("A",), stream_guid="g"),
                            ColumnRef("A")),
                     salt="v1")
    assert "sig-determinism" in rules_hit(report)


def test_incomplete_recurring_mask_detected():
    report = analyze(Filter(OpaqueOp("S", ("A",), stream_guid="g"),
                            ColumnRef("A")),
                     salt="v1")
    findings = [f for f in report.errors if f.rule == "sig-recurring-mask"]
    assert findings and "ignored" in findings[0].message


def test_real_operators_pass_mask_and_determinism():
    plan = Filter(scan(), Literal("d0001", param_name="runDate"))
    report = analyze(plan, salt="v1")
    assert {"sig-determinism", "sig-recurring-mask"}.isdisjoint(
        rules_hit(report))


def test_probe_inputs_rewrites_guids_and_params():
    plan = Filter(scan(guid="g0"), Literal("d0001", param_name="runDate"))
    probed, changed = probe_inputs(plan)
    assert changed
    assert probed.child.stream_guid != "g0"
    assert probed.predicate.value != "d0001"
    assert probed.predicate.param_name == "runDate"


def test_collision_audit_flags_equal_hash_different_structure():
    a = OpaqueOp("One", ("A",), stream_guid="g1")
    b = OpaqueOp("Two", ("X", "Y"), stream_guid="g2")
    assert strict_signature(a, "v1") == strict_signature(b, "v1")
    assert structural_key(a) != structural_key(b)
    analyzer = Analyzer()
    report = analyzer.analyze_workload(
        [("job-a", a), ("job-b", b)],
        AnalysisContext(salt="v1"), include_plans=False)
    assert "sig-collision" in rules_hit(report)


def test_collision_audit_accepts_viewscan_standins():
    definition = scan()
    sig = strict_signature(definition, "v1")
    standin = ViewScan(signature=sig, view_path=view_path_for("vc", sig),
                       columns=definition.schema)
    analyzer = Analyzer(suppress=["reuse-view-liveness",
                                  "reuse-stale-view"])
    report = analyzer.analyze_workload(
        [("original", definition), ("reuser", standin)],
        AnalysisContext(salt="v1"))
    assert "sig-collision" not in rules_hit(report)


def test_missing_salt_is_warned():
    report = analyze(scan(), salt="")
    warnings = [f for f in report.warnings if f.rule == "sig-salt"]
    assert warnings


def test_bare_viewscan_root_skips_salt_probe():
    node = ViewScan(signature="s" * 64, view_path="cloudviews/vc/" + "s" * 64,
                    columns=("A",))
    analyzer = Analyzer(suppress=["reuse-view-liveness",
                                  "reuse-stale-view"])
    report = analyzer.analyze_plan(node, AnalysisContext(salt="v1"))
    assert "sig-salt" not in rules_hit(report)


def test_nondeterministic_process_under_spool_detected():
    body = Process(scan(), "Udo", output_columns=("A",),
                   deterministic=False)
    sig = strict_signature(body, "v1")
    plan = Spool(body, signature=sig, view_path=view_path_for("vc", sig))
    report = analyze(plan, salt="v1")
    findings = [f for f in report.errors if f.rule == "sig-eligibility"]
    assert findings and "not safely reusable" in findings[0].message


# --------------------------------------------------------------------- #
# pack 3: reuse safety


def _store_with_view(definition, salt="v1", ttl=100.0, now=0.0):
    store = ViewStore(ttl_seconds=ttl)
    sig = strict_signature(definition, salt)
    store.begin_materialize(sig, view_path_for("vc", sig),
                            definition.schema, "vc", now=now,
                            definition=definition,
                            recurring_signature="rec")
    store.seal(sig, now=now, row_count=5, size_bytes=50)
    return store, sig


def test_viewscan_over_missing_view_detected():
    node = ViewScan(signature="f" * 64, view_path="cloudviews/vc/" + "f" * 64,
                    columns=("A",))
    report = analyze(node, view_store=ViewStore(), salt="v1")
    findings = [f for f in report.errors if f.rule == "reuse-view-liveness"]
    assert findings and "no producer" in findings[0].message


def test_viewscan_over_expired_view_detected():
    definition = scan()
    store, sig = _store_with_view(definition, ttl=10.0)
    node = view_scan_for(store.get(sig), definition.schema)
    fresh = analyze(node, view_store=store, salt="v1", now=5.0)
    assert "reuse-view-liveness" not in rules_hit(fresh)
    expired = analyze(node, view_store=store, salt="v1", now=50.0)
    assert any(f.rule == "reuse-view-liveness" and "expired" in f.message
               for f in expired.errors)


def test_stale_view_guid_drift_detected():
    catalog = Catalog()
    catalog.register(schema_of("Sales", [("A", "int"), ("B", "int")]), 10)
    definition = Scan("Sales", ("A", "B"),
                      stream_guid=catalog.current_guid("Sales"))
    store, sig = _store_with_view(definition)
    node = view_scan_for(store.get(sig), definition.schema)
    clean = analyze(node, catalog=catalog, view_store=store, salt="v1",
                    now=1.0)
    assert "reuse-stale-view" not in rules_hit(clean)
    catalog.bulk_update("Sales")  # cooking run: new GUID
    report = analyze(node, catalog=catalog, view_store=store, salt="v1",
                     now=1.0)
    assert any(f.rule == "reuse-stale-view" and "stale" in f.message
               for f in report.errors)


def test_store_audit_reports_overdue_eviction():
    definition = scan()
    store, _ = _store_with_view(definition, ttl=10.0)
    analyzer = Analyzer()
    report = analyzer.analyze_workload(
        [], AnalysisContext(view_store=store, salt="v1", now=50.0))
    assert any(f.rule == "reuse-store-audit" and "evicted" in f.message
               for f in report.warnings)


def test_cost_sanity_rejects_unprofitable_match():
    match = ViewMatch(signature="a" * 64, view_path="p", view_rows=10,
                      replaced_operators=3, cost_without=100.0,
                      cost_with=250.0)
    report = Analyzer().analyze_matches([match], AnalysisContext())
    assert any(f.rule == "reuse-cost-sanity" and "cost gate" in f.message
               for f in report.errors)


def test_cost_sanity_accepts_profitable_match():
    match = ViewMatch(signature="a" * 64, view_path="p", view_rows=10,
                      replaced_operators=3, cost_without=100.0,
                      cost_with=20.0)
    report = Analyzer().analyze_matches([match], AnalysisContext())
    assert "reuse-cost-sanity" not in rules_hit(report)


# --------------------------------------------------------------------- #
# the debug-mode pipeline hook


def _optimizer_ctx():
    catalog = Catalog()
    catalog.register(schema_of("Sales", [("A", "int"), ("B", "int")]), 10)
    return OptimizerContext(catalog=catalog, view_store=ViewStore(),
                            salt="v1", trace_id="job-7", debug_checks=True)


def test_assert_stage_sound_passes_clean_plan():
    ctx = _optimizer_ctx()
    plan = Project(scan(), (ColumnRef("A"),), ("A",))
    report = assert_stage_sound(plan, ctx, "post-match", now=0.0)
    assert report.ok


def test_assert_stage_sound_raises_on_corruption():
    ctx = _optimizer_ctx()
    plan = Project(scan(), (ColumnRef("A"), ColumnRef("B")), ("A", "B"))
    object.__setattr__(plan, "names", ("A",))
    with pytest.raises(LintError) as excinfo:
        assert_stage_sound(plan, ctx, "post-match", now=0.0)
    assert "post-match" in str(excinfo.value)
    assert excinfo.value.findings
    assert excinfo.value.findings[0].rule == "plan-project-arity"


def test_engine_debug_checks_flag_threads_from_config():
    from repro.engine.engine import EngineConfig, ScopeEngine

    engine = ScopeEngine(config=EngineConfig(debug_checks=True))
    engine.register_table(
        schema_of("Sales", [("A", "int"), ("B", "int")]),
        [dict(A=i, B=i * 2) for i in range(5)])
    run = engine.run_sql("SELECT A FROM Sales WHERE B > 2")
    assert len(run.rows) == 3  # compile passed its own soundness gate


def test_debug_checks_env_opt_in(monkeypatch):
    from repro.engine.engine import EngineConfig

    monkeypatch.delenv("REPRO_DEBUG_CHECKS", raising=False)
    assert EngineConfig().debug_checks is False
    monkeypatch.setenv("REPRO_DEBUG_CHECKS", "1")
    assert EngineConfig().debug_checks is True
    monkeypatch.setenv("REPRO_DEBUG_CHECKS", "0")
    assert EngineConfig().debug_checks is False


# --------------------------------------------------------------------- #
# report output contract (acceptance: text + JSON, non-zero exit)


def test_corrupted_plan_report_in_both_formats():
    plan = Project(scan(), (ColumnRef("A"), ColumnRef("B")), ("A", "B"))
    object.__setattr__(plan, "names", ("A",))
    report = analyze(plan, salt="v1")
    assert report.exit_code == 1
    text = report.render_text()
    assert "FAIL" in text and "plan-project-arity" in text
    payload = json.loads(report.to_json())
    assert payload["ok"] is False
    assert any(f["rule"] == "plan-project-arity"
               for f in payload["findings"])
