"""Boundary cases for ``MaterializedView.available`` and counter
monotonicity of the :class:`ViewStore` under concurrent churn."""

import threading

import pytest

from repro.storage.views import MaterializedView, ViewStore


def make_view(**overrides):
    fields = dict(
        signature="s1", path="views/s1", schema=("a",),
        virtual_cluster="vc1", created_at=0.0, expires_at=100.0,
        row_count=1, size_bytes=10, sealed=True, sealed_at=5.0)
    fields.update(overrides)
    return MaterializedView(**fields)


class TestAvailableBoundaries:
    def test_available_inside_window(self):
        assert make_view().available(50.0)

    def test_now_equal_to_expires_at_is_unavailable(self):
        # Expiry is exclusive: a view expiring *at* now is already gone,
        # so a sweep at exactly expires_at never races a matcher.
        view = make_view(expires_at=100.0)
        assert not view.available(100.0)
        assert view.available(99.999)

    def test_sealed_at_in_future_is_unavailable(self):
        # Replayed journals can restore a view whose seal timestamp is
        # ahead of a simulated clock; it only becomes visible at seal time.
        view = make_view(sealed_at=50.0)
        assert not view.available(49.0)
        assert view.available(50.0)

    def test_unsealed_is_unavailable_even_in_window(self):
        assert not make_view(sealed=False, sealed_at=None).available(50.0)

    def test_purged_then_sealed_stays_unavailable(self):
        # Purge wins over sealing regardless of order: a build that seals
        # after an invalidation cascade must not resurrect the view.
        view = make_view(sealed=False, sealed_at=None)
        view.purged = True
        view.sealed = True
        view.sealed_at = 10.0
        assert not view.available(50.0)

    def test_purge_in_store_survives_late_seal(self):
        store = ViewStore(ttl_seconds=100.0)
        store.begin_materialize("s1", "views/s1", ("a",), "vc1", now=0.0)
        store.purge("s1", reason="cascade")
        store.seal("s1", now=1.0, row_count=1, size_bytes=10)
        assert store.get("s1").purged
        assert [v for v in store.views() if v.available(2.0)] == []


class TestCounterMonotonicity:
    def test_expiry_and_purge_bump_disjoint_counters(self):
        store = ViewStore(ttl_seconds=10.0)
        store.begin_materialize("s1", "views/s1", ("a",), "vc1", now=0.0)
        store.seal("s1", now=1.0, row_count=1, size_bytes=10)
        store.begin_materialize("s2", "views/s2", ("a",), "vc1", now=0.0)
        store.seal("s2", now=1.0, row_count=1, size_bytes=10)
        store.purge("s2")
        assert store.remove("s2")  # GC hard-removes the purged entry
        store.evict_expired(now=20.0)
        counters = store.counters()
        assert counters["total_created"] == 2
        assert counters["total_expired"] == 1  # only s1 aged out
        assert counters["total_purged"] == 1
        assert counters["total_gc_evicted"] == 1

    @pytest.mark.stress
    def test_counters_monotonic_under_concurrent_churn(self):
        store = ViewStore(ttl_seconds=5.0)
        stop = threading.Event()
        snapshots = []
        errors = []

        from repro.common.errors import StorageError

        def builder(base):
            try:
                for i in range(150):
                    sig = f"v{base}-{i}"
                    store.begin_materialize(sig, f"views/{sig}", ("a",),
                                            "vc1", now=float(i))
                    store.seal(sig, now=float(i), row_count=1, size_bytes=8)
                    for mutate in (store.record_reuse, store.purge):
                        try:
                            mutate(sig)
                        except StorageError:
                            pass  # reaper evicted it first; fine
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reaper():
            now = 0.0
            while not stop.is_set():
                now += 7.0
                store.evict_expired(now)
                snapshots.append(store.counters())

        threads = [threading.Thread(target=builder, args=(t,))
                   for t in range(4)]
        reaper_thread = threading.Thread(target=reaper)
        reaper_thread.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        reaper_thread.join()
        store.evict_expired(now=10_000.0)
        snapshots.append(store.counters())

        assert errors == []
        keys = ("total_created", "total_reused", "total_expired",
                "total_purged", "total_gc_evicted")
        for earlier, later in zip(snapshots, snapshots[1:]):
            for key in keys:
                assert later[key] >= earlier[key], key
        final = snapshots[-1]
        assert final["total_created"] == 600
        assert final["total_reused"] <= 600
        # Every sealed view is eventually aged out; nothing is lost.
        assert final["total_expired"] == 600
        assert len(store.views()) == 0
