"""Unit tests for the flight recorder's metrics pillar."""

import json

import pytest

from repro.obs import Histogram, MetricsRegistry, percentile
from repro.telemetry.comparison import percentile as comparison_percentile


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_single_value_is_every_percentile(self):
        for pct in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile([42.0], pct) == 42.0

    def test_median_of_odd_count(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_median_interpolates_even_count(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5

    def test_extremes(self):
        values = list(range(101))
        assert percentile(values, 0.0) == 0
        assert percentile(values, 100.0) == 100

    def test_p95_p99_on_uniform_grid(self):
        values = [float(v) for v in range(101)]  # 0..100
        assert percentile(values, 95.0) == pytest.approx(95.0)
        assert percentile(values, 99.0) == pytest.approx(99.0)

    def test_interpolation_weighting(self):
        # rank = 0.9 * 1 -> 0.9 between 10 and 20 = 19
        assert percentile([10.0, 20.0], 90.0) == pytest.approx(19.0)

    def test_shared_with_comparison_harness(self):
        # telemetry/comparison must use the exact same math.
        assert comparison_percentile is percentile


class TestHistogram:
    def test_summary_percentiles(self):
        histogram = Histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)

    def test_empty_histogram_is_all_zero(self):
        histogram = Histogram("empty")
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0
        assert summary["p99"] == 0.0


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("jobs")
        registry.inc("jobs", 4)
        assert registry.counter("jobs") == 5
        assert registry.counter("missing") == 0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.set_gauge("bytes", 10)
        registry.set_gauge("bytes", 7)
        assert registry.gauge("bytes") == 7

    def test_histograms_created_on_first_observe(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1.0)
        registry.observe("lat", 3.0)
        assert registry.histogram("lat").count == 2
        assert registry.histogram("nope") is None

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.inc("events.view.sealed")
        registry.inc("events.lock.denied", 2)
        registry.inc("other")
        assert registry.counters_with_prefix("events.") == {
            "events.view.sealed": 1.0,
            "events.lock.denied": 2.0,
        }

    def test_dump_and_render_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("views.created", 3)
        registry.set_gauge("views.live_bytes", 1024)
        for value in (0.015, 0.0015, 0.015):
            registry.observe("insights.fetch.latency", value)
        path = tmp_path / "metrics.json"
        registry.dump_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["counters"]["views.created"] == 3
        assert loaded["gauges"]["views.live_bytes"] == 1024
        assert loaded["histograms"]["insights.fetch.latency"]["count"] == 3
        rendered = MetricsRegistry.render_dict(loaded)
        assert "views.created" in rendered
        assert "insights.fetch.latency" in rendered
        assert registry.render() == rendered
