"""Unit tests for the telemetry comparison harness."""

import pytest

from repro.cluster import JobTelemetry
from repro.telemetry import (
    compare_telemetry,
    evaluate_against_baseline,
    percentile,
    percentile_baseline,
)


def job(job_id, latency=100.0, processing=500.0, vc="vc1", submit=0.0,
        containers=10, input_bytes=1000, queue=0):
    t = JobTelemetry(job_id=job_id, virtual_cluster=vc, submit_time=submit)
    t.start_time = submit
    t.finish_time = submit + latency
    t.processing_time = processing
    t.bonus_processing_time = processing * 0.3
    t.containers = containers
    t.input_bytes = input_bytes
    t.data_read_bytes = input_bytes * 2
    t.queue_length_at_submit = queue
    return t


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_p75(self):
        assert percentile([0, 10, 20, 30, 40], 75) == 30

    def test_extremes(self):
        assert percentile([5, 1, 9], 0) == 1
        assert percentile([5, 1, 9], 100) == 9

    def test_singleton(self):
        assert percentile([7], 99) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestCompareTelemetry:
    def test_cumulative_improvements(self):
        baseline = [job("b1", latency=100), job("b2", latency=100)]
        enabled = [job("c1", latency=60), job("c2", latency=80)]
        report = compare_telemetry(baseline, enabled)
        assert report.improvement_percent("latency") == pytest.approx(30.0)

    def test_median_matches_by_vc_and_time(self):
        baseline = [job("b1", latency=100, submit=10.0),
                    job("b2", latency=200, submit=20.0)]
        enabled = [job("c1", latency=50, submit=10.0),
                   job("c2", latency=100, submit=20.0)]
        report = compare_telemetry(baseline, enabled)
        assert report.median_latency_improvement == pytest.approx(0.5)

    def test_zero_baseline_reports_zero(self):
        report = compare_telemetry([], [])
        assert report.improvement_percent("latency") == 0.0

    def test_rows_in_table1_order(self):
        report = compare_telemetry([job("b")], [job("c")])
        labels = [label for label, _ in report.rows()]
        assert labels[0] == "Latency Improvement"
        assert labels[-1] == "Queuing Length Improvement"
        assert len(labels) == 7

    def test_regression_shows_negative(self):
        report = compare_telemetry([job("b", latency=50)],
                                   [job("c", latency=100)])
        assert report.improvement_percent("latency") == pytest.approx(-100.0)


class TestPercentileBaseline:
    def test_baseline_from_history_and_evaluation(self):
        history = [job(f"h{i}", latency=100.0 + i * 10) for i in range(8)]
        template_of = {f"h{i}": "tmplA" for i in range(8)}
        baseline = percentile_baseline(history, template_of,
                                       metric="latency", pct=75.0)
        assert baseline.thresholds["tmplA"] == pytest.approx(
            percentile([100 + i * 10 for i in range(8)], 75))

        enabled = [job("e1", latency=80.0), job("e2", latency=120.0)]
        template_of.update({"e1": "tmplA", "e2": "tmplA"})
        result = evaluate_against_baseline(baseline, enabled, template_of)
        assert result["jobs"] == 2
        assert result["median"] > 0  # most new instances beat the p75

    def test_jobs_without_template_ignored(self):
        baseline = percentile_baseline([job("h1")], {"h1": "tmplA"})
        result = evaluate_against_baseline(
            baseline, [job("e1")], {})
        assert result["jobs"] == 0

    def test_unknown_template_ignored(self):
        baseline = percentile_baseline([job("h1")], {"h1": "tmplA"})
        result = evaluate_against_baseline(
            baseline, [job("e1")], {"e1": "tmplB"})
        assert result["jobs"] == 0
