"""Unit tests for IN-list containment (Section 5.3 extension)."""

import pytest

from repro.optimizer.containment import ContainmentChecker
from repro.plan.expressions import (
    BinaryOp,
    ColumnRef,
    InList,
    Literal,
    conjoin,
)


def in_list(column, values, negated=False):
    return InList(ColumnRef(column), tuple(Literal(v) for v in values),
                  negated)


def cmp(column, op, value):
    return BinaryOp(op, ColumnRef(column), Literal(value))


@pytest.fixture
def checker():
    return ContainmentChecker()


class TestInListContainment:
    def test_superset_contains_subset(self, checker):
        assert checker.contains(in_list("x", [1, 2, 3]),
                                in_list("x", [1, 3]))
        assert not checker.contains(in_list("x", [1, 3]),
                                    in_list("x", [1, 2, 3]))

    def test_in_list_contains_equality(self, checker):
        assert checker.contains(in_list("x", [1, 2, 3]), cmp("x", "=", 2))
        assert not checker.contains(in_list("x", [1, 3]), cmp("x", "=", 2))

    def test_range_contains_in_list(self, checker):
        assert checker.contains(cmp("x", ">", 0), in_list("x", [1, 2, 3]))
        assert not checker.contains(cmp("x", ">", 2), in_list("x", [1, 5]))

    def test_in_list_never_contains_range(self, checker):
        assert not checker.contains(in_list("x", [1, 2, 3]),
                                    cmp("x", ">", 1))

    def test_string_members(self, checker):
        assert checker.contains(in_list("seg", ["Asia", "Europe"]),
                                cmp("seg", "=", "Asia"))
        assert checker.contains(in_list("seg", ["Asia", "Europe"]),
                                in_list("seg", ["Europe"]))

    def test_negated_in_not_supported_soundly(self, checker):
        # NOT IN is not normalized: the checker must answer False, never
        # a wrong True.
        assert not checker.contains(in_list("x", [1, 2], negated=True),
                                    cmp("x", "=", 5))

    def test_conjunction_with_in_list(self, checker):
        general = conjoin([in_list("x", [1, 2, 3]), cmp("y", ">", 0)])
        specific = conjoin([in_list("x", [1, 2]), cmp("y", ">", 5)])
        assert checker.contains(general, specific)
        assert not checker.contains(specific, general)

    def test_duplicate_in_conjuncts_intersect(self, checker):
        general = in_list("x", [2])
        specific = conjoin([in_list("x", [1, 2]), in_list("x", [2, 3])])
        assert checker.contains(general, specific)  # intersection is {2}
