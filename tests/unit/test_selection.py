"""Unit tests for view-selection: candidates, greedy, per-VC, BigSubs,
and schedule awareness."""

import pytest

from repro.selection import (
    ReuseCandidate,
    SelectionPolicy,
    apply_schedule_awareness,
    bigsubs_select,
    build_candidates,
    effective_frequency,
    greedy_select,
    per_vc_select,
)
from repro.workload.repository import (
    JobRecord,
    SubexpressionRecord,
    WorkloadRepository,
)


def record(job_id, recurring, strict, *, vc="vc1", t=0.0, work=1000.0,
           rows=50, size=400, height=2, node_id=0, parent=None,
           eligible=True, operator="Join"):
    return SubexpressionRecord(
        job_id=job_id, virtual_cluster=vc, submit_time=t,
        template_id=f"tmpl-{recurring}", pipeline_id="p",
        strict=strict, recurring=recurring, tag=f"tag-{recurring}",
        operator=operator, height=height, eligible=eligible, rows=rows,
        size_bytes=size, work=work, node_id=node_id, parent_node_id=parent)


def repo_with(*records):
    repo = WorkloadRepository()
    by_job = {}
    for r in records:
        by_job.setdefault(r.job_id, []).append(r)
    for job_id, recs in by_job.items():
        repo.add_job(JobRecord(
            job_id=job_id, virtual_cluster=recs[0].virtual_cluster,
            submit_time=recs[0].submit_time, template_id="t",
            pipeline_id="p", runtime_version="r1",
            input_datasets=("D",), subexpression_count=len(recs)), recs)
    return repo


def candidate(recurring="r1", frequency=5, instances=1, rows=50,
              size=400, work=1000.0, vcs=("vc1",), times=None,
              per_vc=None):
    times = times or ((0.0,) * frequency,)
    return ReuseCandidate(
        recurring=recurring, tag=f"tag-{recurring}", operator="Join",
        height=2, frequency=frequency, instances=instances,
        distinct_jobs=frequency, avg_rows=rows, avg_bytes=size,
        avg_work=work, virtual_clusters=frozenset(vcs),
        instance_times=tuple(tuple(t) for t in times),
        per_vc_frequency=per_vc or tuple((vc, frequency) for vc in vcs))


class TestCandidates:
    def test_benefit_counts_only_within_epoch_reuse(self):
        within = candidate(frequency=6, instances=1)
        across = candidate(frequency=6, instances=6)
        assert within.benefit > 0
        assert across.reusable_occurrences == 0
        assert across.benefit <= 0

    def test_build_candidates_epoch_grouping(self):
        # Same recurring sig, two epochs, 3 occurrences each.
        records = []
        for day in range(2):
            for i in range(3):
                records.append(record(f"j{day}{i}", "r1", f"strict-{day}",
                                      t=day * 86400.0 + i))
        repo = repo_with(*records)
        (cand,) = build_candidates(repo)
        assert cand.frequency == 6
        assert cand.instances == 2
        assert cand.reusable_occurrences == 4

    def test_scans_excluded_by_height(self):
        records = [record(f"j{i}", "r1", "s1", height=0) for i in range(4)]
        assert build_candidates(repo_with(*records)) == []

    def test_ineligible_excluded(self):
        records = [record(f"j{i}", "r1", "s1", eligible=False)
                   for i in range(4)]
        assert build_candidates(repo_with(*records)) == []

    def test_never_cooccurring_excluded(self):
        records = [record(f"j{i}", "r1", f"s{i}") for i in range(4)]
        assert build_candidates(repo_with(*records)) == []

    def test_density_orders_output(self):
        records = ([record(f"a{i}", "big", "sb", size=100, work=5000.0,
                           node_id=0) for i in range(3)]
                   + [record(f"b{i}", "small", "ss", size=10000, work=500.0,
                             node_id=0) for i in range(3)])
        cands = build_candidates(repo_with(*records))
        assert [c.recurring for c in cands] == ["big", "small"]


class TestScheduleAwareness:
    def test_effective_frequency_no_lag(self):
        assert effective_frequency((0.0, 1.0, 2.0), 0.0) == 3

    def test_burst_collapses_to_one(self):
        assert effective_frequency((0.0, 1.0, 2.0), 100.0) == 1

    def test_spread_survives(self):
        assert effective_frequency((0.0, 200.0, 400.0), 100.0) == 3

    def test_mixed_burst_and_spread(self):
        # burst at 0-2s, then two spread instances
        assert effective_frequency((0.0, 1.0, 2.0, 500.0, 1000.0), 100.0) == 3

    def test_empty(self):
        assert effective_frequency((), 100.0) == 0

    def test_filter_drops_burst_only_candidates(self):
        burst = candidate(recurring="burst", frequency=4, instances=1,
                          times=((0.0, 1.0, 2.0, 3.0),))
        spread = candidate(recurring="spread", frequency=4, instances=1,
                           times=((0.0, 500.0, 1000.0, 1500.0),))
        survivors, rejected = apply_schedule_awareness([burst, spread], 100.0)
        assert [c.recurring for c in survivors] == ["spread"]
        assert rejected == 1

    def test_policy_lag_flows_through_greedy(self):
        burst = candidate(recurring="burst", frequency=4, instances=1,
                          times=((0.0, 1.0, 2.0, 3.0),))
        policy = SelectionPolicy(materialization_lag_seconds=100.0)
        result = greedy_select([burst], policy)
        assert result.selected == []
        assert result.rejected_by_schedule == 1


class TestGreedy:
    def test_respects_storage_budget(self):
        cands = [candidate(recurring=f"r{i}", size=400) for i in range(10)]
        policy = SelectionPolicy(storage_budget_bytes=1000,
                                 min_reuses_per_epoch=0)
        result = greedy_select(cands, policy)
        assert len(result.selected) == 2
        assert result.storage_used <= 1000
        assert result.rejected_by_budget == 8

    def test_respects_max_views(self):
        cands = [candidate(recurring=f"r{i}") for i in range(10)]
        policy = SelectionPolicy(max_views=3, min_reuses_per_epoch=0)
        assert len(greedy_select(cands, policy).selected) == 3

    def test_min_benefit_threshold(self):
        tiny = candidate(recurring="tiny", work=10.0, rows=50)
        assert tiny.benefit <= 0
        result = greedy_select([tiny], SelectionPolicy())
        assert result.selected == []

    def test_min_reuses_per_epoch(self):
        marginal = candidate(frequency=4, instances=2)  # 1 reuse/epoch
        hot = candidate(recurring="hot", frequency=8, instances=2)
        policy = SelectionPolicy(min_reuses_per_epoch=2.0)
        result = greedy_select([marginal, hot], policy)
        assert [c.recurring for c in result.selected] == ["hot"]

    def test_annotations_produced(self):
        result = greedy_select([candidate()], SelectionPolicy(
            min_reuses_per_epoch=0))
        (annotation,) = result.annotations()
        assert annotation.recurring_signature == "r1"
        assert annotation.tag == "tag-r1"

    def test_summary_is_readable(self):
        result = greedy_select([candidate()], SelectionPolicy(
            min_reuses_per_epoch=0))
        assert "1 views selected" in result.summary()


class TestPerVc:
    def test_per_vc_budgets_independent(self):
        a = candidate(recurring="a", vcs=("vc1",), size=800,
                      per_vc=(("vc1", 5),))
        b = candidate(recurring="b", vcs=("vc2",), size=800,
                      per_vc=(("vc2", 5),))
        policy = SelectionPolicy(storage_budget_bytes=1000,
                                 min_reuses_per_epoch=0)
        result = per_vc_select([a, b], policy)
        # Each VC has its own 1000-byte budget: both fit.
        assert {c.recurring for c in result.selected} == {"a", "b"}

    def test_explicit_per_vc_budget(self):
        a = candidate(recurring="a", vcs=("vc1",), size=800,
                      per_vc=(("vc1", 5),))
        policy = SelectionPolicy(per_vc_budgets={"vc1": 100},
                                 min_reuses_per_epoch=0)
        result = per_vc_select([a], policy)
        assert result.selected == []

    def test_cross_vc_candidate_needs_local_frequency(self):
        shared = candidate(recurring="x", vcs=("vc1", "vc2"),
                           per_vc=(("vc1", 5), ("vc2", 1)))
        policy = SelectionPolicy(min_reuses_per_epoch=0)
        result = per_vc_select([shared], policy)
        # vc2 frequency 1 cannot reuse; vc1 carries the selection.
        assert [c.recurring for c in result.selected] == ["x"]


class TestBigSubs:
    def _nested_repo(self):
        """Jobs where candidate 'outer' contains candidate 'inner'."""
        records = []
        for i in range(4):
            records.append(record(f"j{i}", "outer", "so", work=5000.0,
                                  size=500, node_id=0, parent=None, height=3))
            records.append(record(f"j{i}", "inner", "si", work=2000.0,
                                  size=300, node_id=1, parent=0, height=2))
        return repo_with(*records)

    def test_nested_candidate_suppressed(self):
        repo = self._nested_repo()
        cands = build_candidates(repo)
        policy = SelectionPolicy(storage_budget_bytes=10_000,
                                 min_reuses_per_epoch=0)
        result = bigsubs_select(repo, cands, policy)
        assert [c.recurring for c in result.selected] == ["outer"]

    def test_inner_selected_when_outer_does_not_fit(self):
        repo = self._nested_repo()
        cands = build_candidates(repo)
        policy = SelectionPolicy(storage_budget_bytes=350,
                                 min_reuses_per_epoch=0)
        result = bigsubs_select(repo, cands, policy)
        assert [c.recurring for c in result.selected] == ["inner"]

    def test_disjoint_candidates_both_selected(self):
        records = []
        for i in range(4):
            records.append(record(f"a{i}", "r1", "s1", node_id=0))
        for i in range(4):
            records.append(record(f"b{i}", "r2", "s2", node_id=0))
        repo = repo_with(*records)
        result = bigsubs_select(repo, build_candidates(repo),
                                SelectionPolicy(min_reuses_per_epoch=0))
        assert {c.recurring for c in result.selected} == {"r1", "r2"}

    def test_converges_empty_on_no_viable_candidates(self):
        repo = repo_with(record("j1", "r1", "s1"))
        result = bigsubs_select(repo, build_candidates(repo),
                                SelectionPolicy())
        assert result.selected == []

    def test_bigsubs_respects_max_views(self):
        records = []
        for sig in ("r1", "r2", "r3"):
            for i in range(4):
                records.append(record(f"{sig}-j{i}", sig, f"s-{sig}",
                                      node_id=0))
        repo = repo_with(*records)
        policy = SelectionPolicy(max_views=2, min_reuses_per_epoch=0)
        result = bigsubs_select(repo, build_candidates(repo), policy)
        assert len(result.selected) <= 2

    def test_unknown_algorithm_rejected(self):
        from repro.core import CloudViews
        with pytest.raises(ValueError):
            CloudViews(selection_algorithm="nope")
