"""Unit tests for the tracked locks and the runtime lock sanitizer."""

import threading

import pytest

from repro.common.errors import ConfigError, DeadlockError, LockOrderError
from repro.common.sync import (
    RANK_CATALOG,
    RANK_INSIGHTS,
    RANK_LIFECYCLE,
    RANK_STORAGE,
    TrackedLock,
    TrackedRLock,
    disable_sanitizer,
    enable_sanitizer,
    rank_tier,
    sanitizer,
)
from repro.obs import events as obs_events
from repro.obs.recorder import FlightRecorder


@pytest.fixture(autouse=True)
def _no_ambient_sanitizer():
    """Each test installs (or not) its own sanitizer explicitly."""
    had = sanitizer()
    disable_sanitizer()
    yield
    disable_sanitizer()
    if had is not None:
        # Restore the ambient sanitizer REPRO_DEBUG_CHECKS installed so
        # later tests in the same process keep their coverage.
        enable_sanitizer(recorder=had.recorder,
                         raise_on_violation=had.raise_on_violation,
                         check_hierarchy=had.check_hierarchy,
                         detect_deadlocks=had.detect_deadlocks)


class TestTrackedLockSurface:
    def test_is_a_drop_in_lock(self):
        lock = TrackedLock("t.lock", RANK_STORAGE)
        assert not lock.locked()
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_requires_a_name(self):
        with pytest.raises(ConfigError):
            TrackedLock("", RANK_STORAGE)

    def test_rlock_is_reentrant(self):
        lock = TrackedRLock("t.rlock", RANK_STORAGE)
        with lock:
            with lock:
                assert lock.locked()
        assert not lock.locked()

    def test_non_blocking_acquire(self):
        lock = TrackedLock("t.nb", RANK_STORAGE)
        assert lock.acquire(blocking=False)
        assert not lock.acquire(blocking=False)
        lock.release()

    def test_rank_tier_rendering(self):
        assert rank_tier(RANK_CATALOG) == "catalog"
        assert rank_tier(RANK_LIFECYCLE + 20) == "lifecycle"
        assert rank_tier(10) == "leaf"


class TestSanitizerHierarchy:
    def test_descending_acquisition_is_legal(self):
        enable_sanitizer()
        outer = TrackedLock("t.outer", RANK_LIFECYCLE)
        inner = TrackedLock("t.inner", RANK_STORAGE)
        with outer:
            with inner:
                assert sanitizer().held_names() == ["t.outer", "t.inner"]
        assert sanitizer().held_names() == []
        assert sanitizer().violations == []

    def test_ascending_acquisition_raises(self):
        enable_sanitizer()
        low = TrackedLock("t.low", RANK_CATALOG)
        high = TrackedLock("t.high", RANK_INSIGHTS)
        with low:
            with pytest.raises(LockOrderError, match="t.high"):
                high.acquire()
        assert sanitizer().violations[0]["kind"] == "hierarchy"

    def test_equal_rank_is_also_a_violation(self):
        enable_sanitizer()
        a = TrackedLock("t.a", RANK_STORAGE)
        b = TrackedLock("t.b", RANK_STORAGE)
        with a:
            with pytest.raises(LockOrderError):
                b.acquire()

    def test_reentrant_reacquire_is_exempt(self):
        enable_sanitizer()
        lock = TrackedRLock("t.re", RANK_STORAGE)
        with lock:
            with lock:  # same lock: no hierarchy check
                pass
        assert sanitizer().violations == []

    def test_non_reentrant_reacquire_is_self_deadlock(self):
        enable_sanitizer(detect_deadlocks=False)
        lock = TrackedLock("t.self", RANK_STORAGE)
        lock.acquire()
        try:
            with pytest.raises(LockOrderError, match="non-reentrant"):
                lock.acquire()
        finally:
            lock.release()
        assert sanitizer().violations[0]["kind"] == "self-deadlock"

    def test_collect_only_mode_does_not_raise(self):
        san = enable_sanitizer(raise_on_violation=False)
        low = TrackedLock("t.low2", RANK_CATALOG)
        high = TrackedLock("t.high2", RANK_INSIGHTS)
        with low:
            with high:
                pass
        assert len(san.violations) == 1
        assert san.violations[0]["lock"] == "t.high2"

    def test_violation_emits_flight_recorder_event(self):
        recorder = FlightRecorder()
        enable_sanitizer(recorder=recorder, raise_on_violation=False)
        low = TrackedLock("t.low3", RANK_CATALOG)
        high = TrackedLock("t.high3", RANK_INSIGHTS)
        with low:
            with high:
                pass
        events = recorder.events.events(obs_events.SANITIZER_VIOLATION)
        assert len(events) == 1
        assert events[0].attrs["violation"] == "hierarchy"
        assert events[0].attrs["lock"] == "t.high3"


class TestSanitizerDeadlock:
    def test_abba_deadlock_detected_not_hung(self):
        """Two threads acquiring {a, b} in opposite orders: one of them
        gets a DeadlockError at acquire time instead of hanging."""
        enable_sanitizer(check_hierarchy=False)
        a = TrackedLock("t.dead.a", RANK_STORAGE)
        b = TrackedLock("t.dead.b", RANK_STORAGE + 1)
        barrier = threading.Barrier(2, timeout=5.0)
        outcomes = {}

        def worker(name, first, second):
            first.acquire()
            barrier.wait()
            try:
                # One of the two second-acquires must close the cycle.
                second.acquire(timeout=5.0)
                second.release()
                outcomes[name] = "ok"
            except DeadlockError:
                outcomes[name] = "deadlock"
            finally:
                first.release()

        t1 = threading.Thread(target=worker, args=("t1", a, b))
        t2 = threading.Thread(target=worker, args=("t2", b, a))
        t1.start(); t2.start()
        t1.join(timeout=10.0); t2.join(timeout=10.0)
        assert not t1.is_alive() and not t2.is_alive()
        assert "deadlock" in outcomes.values()
        kinds = [v["kind"] for v in sanitizer().violations]
        assert "deadlock" in kinds


class TestHistograms:
    def test_wait_and_hold_histograms_recorded(self):
        recorder = FlightRecorder()
        lock = TrackedLock("t.hist", RANK_STORAGE, recorder)
        with lock:
            pass
        wait = recorder.metrics.histogram("lock.wait_seconds.t.hist")
        hold = recorder.metrics.histogram("lock.hold_seconds.t.hist")
        assert wait is not None and wait.count == 1
        assert hold is not None and hold.count == 1

    def test_rlock_hold_measures_outermost_only(self):
        recorder = FlightRecorder()
        lock = TrackedRLock("t.hist.r", RANK_STORAGE, recorder)
        with lock:
            with lock:
                pass
        hold = recorder.metrics.histogram("lock.hold_seconds.t.hist.r")
        assert hold is not None and hold.count == 1

    def test_null_recorder_records_nothing(self):
        lock = TrackedLock("t.hist.null", RANK_STORAGE)
        with lock:
            pass
        # No recorder, no sanitizer: nothing to assert beyond not crashing
        # -- the fast path must not touch any histogram machinery.
        assert not lock.locked()


class TestEnableDisable:
    def test_disable_reverts_to_fast_path(self):
        enable_sanitizer()
        assert sanitizer() is not None
        disable_sanitizer()
        assert sanitizer() is None
        low = TrackedLock("t.off.low", RANK_CATALOG)
        high = TrackedLock("t.off.high", RANK_INSIGHTS)
        with low:
            with high:  # no sanitizer: inversion passes silently
                pass

    def test_toggle_mid_hold_is_safe(self):
        """Enabling the sanitizer while a lock is held (fast-path
        acquire, slow-path release) must not corrupt state."""
        lock = TrackedLock("t.toggle", RANK_STORAGE)
        lock.acquire()
        enable_sanitizer()
        lock.release()  # depth is 0: slow path must tolerate it
        disable_sanitizer()
        assert not lock.locked()
