"""Unit tests for the unified fault-injection framework (repro.faults)."""

import warnings

import pytest

from repro.common.errors import (
    ConfigError,
    InjectedCrash,
    InsightsTimeout,
    StorageError,
    TransientBackendError,
)
from repro.faults import (
    NO_FAULT,
    NULL_FAULTS,
    FaultPlan,
    FaultRuntime,
    FaultSpec,
    merge_plans,
    points,
    resolve_faults,
)
from repro.faults.chaos import campaign_plan
from repro.insights.client import FaultInjector


class TestFaultSpecValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault point"):
            FaultSpec("backend.telepathy", "crash")

    def test_unsupported_kind_rejected(self):
        with pytest.raises(ConfigError, match="not valid at"):
            FaultSpec(points.BACKEND_EXECUTE, "torn")

    def test_probability_bounds(self):
        with pytest.raises(ConfigError, match="probability"):
            FaultSpec(points.INSIGHTS_RPC, "drop", probability=1.5)
        with pytest.raises(ConfigError, match="probability"):
            FaultSpec(points.INSIGHTS_RPC, "drop", probability=-0.1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError, match="max_fires"):
            FaultSpec(points.INSIGHTS_RPC, "drop", max_fires=-1)
        with pytest.raises(ConfigError, match="after"):
            FaultSpec(points.INSIGHTS_RPC, "drop", after=-1)
        with pytest.raises(ConfigError, match="delay_seconds"):
            FaultSpec(points.INSIGHTS_RPC, "delay", delay_seconds=-0.5)

    def test_every_registry_kind_constructs(self):
        for point, (_, kinds) in points.REGISTRY.items():
            for kind in kinds:
                FaultSpec(point, kind)


class TestFaultPlanSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(specs=[
            FaultSpec(points.BACKEND_EXECUTE, "transient",
                      probability=0.25, max_fires=3, after=2),
            FaultSpec(points.INSIGHTS_RPC, "delay", delay_seconds=0.05),
        ], seed=9, name="round-trip")
        again = FaultPlan.parse(plan.to_json())
        assert again.to_json() == plan.to_json()
        assert again.seed == 9 and again.name == "round-trip"

    def test_dsl_parse(self):
        plan = FaultPlan.parse(
            "seed=4; backend.execute:transient:0.2:2;"
            "insights.rpc:drop:0.5")
        assert plan.seed == 4
        assert [(s.point, s.kind) for s in plan.specs] == [
            (points.BACKEND_EXECUTE, "transient"),
            (points.INSIGHTS_RPC, "drop")]
        assert plan.specs[0].probability == 0.2
        assert plan.specs[0].max_fires == 2

    def test_dsl_rejects_malformed(self):
        with pytest.raises(ConfigError, match="malformed fault spec"):
            FaultPlan.parse("backend.execute")
        with pytest.raises(ConfigError, match="seed"):
            FaultPlan.parse("seed=four;insights.rpc:drop")
        with pytest.raises(ConfigError, match="malformed fault-plan JSON"):
            FaultPlan.parse("{not json")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env({
            "REPRO_FAULTS": "insights.rpc:drop:0.5",
            "REPRO_FAULTS_SEED": "11"})
        assert plan.seed == 11
        assert plan.specs[0].point == points.INSIGHTS_RPC
        with pytest.raises(ConfigError, match="REPRO_FAULTS_SEED"):
            FaultPlan.from_env({"REPRO_FAULTS": "insights.rpc:drop",
                                "REPRO_FAULTS_SEED": "soon"})

    def test_active(self):
        assert not FaultPlan().active
        assert not FaultPlan(specs=[FaultSpec(
            points.INSIGHTS_RPC, "drop", probability=0.0)]).active
        assert not FaultPlan(specs=[FaultSpec(
            points.INSIGHTS_RPC, "drop", max_fires=0)]).active
        assert FaultPlan(specs=[FaultSpec(
            points.INSIGHTS_RPC, "drop")]).active

    def test_merge_plans(self):
        merged = merge_plans([
            FaultPlan(specs=[FaultSpec(points.GC_SWEEP, "storage")],
                      seed=3, name="a"),
            FaultPlan(specs=[FaultSpec(points.INSIGHTS_RPC, "drop")]),
        ])
        assert len(merged.specs) == 2
        assert merged.seed == 3 and merged.name == "a"


class TestFaultRuntime:
    def test_same_seed_same_outcomes(self):
        plan = FaultPlan(specs=[FaultSpec(
            points.INSIGHTS_RPC, "drop", probability=0.4)], seed=7)
        first = FaultRuntime(plan)
        second = FaultRuntime(plan)
        seq_a = [first.check(points.INSIGHTS_RPC).kind for _ in range(50)]
        seq_b = [second.check(points.INSIGHTS_RPC).kind for _ in range(50)]
        assert seq_a == seq_b
        assert "drop" in seq_a and None in seq_a

    def test_max_fires_bounds_total(self):
        runtime = FaultRuntime(FaultPlan(specs=[FaultSpec(
            points.BACKEND_EXECUTE, "transient", max_fires=2)]))
        fired = 0
        for _ in range(10):
            try:
                runtime.fire(points.BACKEND_EXECUTE)
            except TransientBackendError:
                fired += 1
        assert fired == 2
        assert runtime.fired_total == 2

    def test_after_skips_arrivals(self):
        runtime = FaultRuntime(FaultPlan(specs=[FaultSpec(
            points.BACKEND_EXECUTE, "crash", after=3, max_fires=1)]))
        for _ in range(3):
            assert runtime.check(points.BACKEND_EXECUTE) is NO_FAULT
        assert runtime.check(points.BACKEND_EXECUTE).kind == "crash"

    def test_cumulative_draw_semantics(self):
        # drop=0.3 and error=0.2 share one draw: [0,0.3) drops,
        # [0.3,0.5) errors, the rest survive -- over many arrivals the
        # two kinds fire in roughly those proportions.
        runtime = FaultRuntime(FaultPlan(specs=[
            FaultSpec(points.INSIGHTS_RPC, "drop", probability=0.3),
            FaultSpec(points.INSIGHTS_RPC, "error", probability=0.2),
        ], seed=1))
        kinds = [runtime.check(points.INSIGHTS_RPC).kind
                 for _ in range(2000)]
        drops = kinds.count("drop") / len(kinds)
        errors = kinds.count("error") / len(kinds)
        assert 0.25 < drops < 0.35
        assert 0.15 < errors < 0.25

    def test_always_on_delay_rides_survivors(self):
        runtime = FaultRuntime(FaultPlan(specs=[
            FaultSpec(points.INSIGHTS_RPC, "drop", probability=0.5,
                      max_fires=1),
            FaultSpec(points.INSIGHTS_RPC, "delay", delay_seconds=0.25),
        ], seed=0))
        outcomes = [runtime.check(points.INSIGHTS_RPC) for _ in range(20)]
        survivors = [o for o in outcomes if o.kind == "delay"]
        assert survivors and all(o.delay == 0.25 for o in survivors)

    def test_fire_maps_kinds_to_exceptions(self):
        cases = [
            (points.BACKEND_EXECUTE, "crash", InjectedCrash),
            (points.BACKEND_EXECUTE, "transient", TransientBackendError),
            (points.BACKEND_SCAN_VIEW, "storage", StorageError),
            (points.JOURNAL_APPEND, "torn", StorageError),
            (points.INSIGHTS_RPC, "drop", InsightsTimeout),
        ]
        for point, kind, exc in cases:
            runtime = FaultRuntime(FaultPlan(
                specs=[FaultSpec(point, kind)]))
            with pytest.raises(exc, match=f"injected {kind} fault"):
                runtime.fire(point)

    def test_stats_shape(self):
        runtime = FaultRuntime(FaultPlan(specs=[FaultSpec(
            points.GC_SWEEP, "storage", max_fires=1)], seed=5,
            name="stats"))
        with pytest.raises(StorageError):
            runtime.fire(points.GC_SWEEP)
        runtime.fire(points.GC_SWEEP)
        stats = runtime.stats()
        assert stats["plan"] == "stats" and stats["seed"] == 5
        assert stats["arrivals"] == {points.GC_SWEEP: 2}
        assert stats["fired"] == {points.GC_SWEEP: 1}
        assert stats["fired_total"] == 1


class TestNullRuntimeAndResolution:
    def test_null_runtime_is_inert(self):
        assert not NULL_FAULTS.enabled
        assert NULL_FAULTS.check("anything") is NO_FAULT
        assert NULL_FAULTS.fire("anything") is NO_FAULT
        assert NULL_FAULTS.fired_total == 0

    def test_resolve_faults_coercions(self):
        assert resolve_faults(None) is NULL_FAULTS
        runtime = FaultRuntime(FaultPlan())
        assert resolve_faults(runtime) is runtime
        from_plan = resolve_faults(FaultPlan(specs=[FaultSpec(
            points.INSIGHTS_RPC, "drop")]))
        assert from_plan.enabled
        from_text = resolve_faults("insights.rpc:drop:0.5")
        assert from_text.plan.specs[0].probability == 0.5
        with pytest.raises(ConfigError, match="faults="):
            resolve_faults(42)

    def test_inactive_plan_disables_runtime(self):
        runtime = FaultRuntime(FaultPlan(specs=[FaultSpec(
            points.INSIGHTS_RPC, "drop", max_fires=0)]))
        assert not runtime.enabled


class TestCampaignPlans:
    def test_deterministic_per_seed(self):
        for seed in range(6):
            assert (campaign_plan(seed).to_json()
                    == campaign_plan(seed).to_json())

    def test_distinct_across_seeds(self):
        plans = {campaign_plan(seed).to_json() for seed in range(8)}
        assert len(plans) > 1

    def test_execute_path_fires_stay_within_retry_budget(self):
        # The engine absorbs at most execute_retries (2) failures per
        # job; every campaign must keep its worst case under that.
        execute_points = {points.BACKEND_EXECUTE,
                          points.BACKEND_MATERIALIZE,
                          points.BACKEND_MATERIALIZE_MID,
                          points.BACKEND_SCAN_VIEW}
        for seed in range(20):
            plan = campaign_plan(seed)
            worst = sum(spec.max_fires or 0 for spec in plan.specs
                        if spec.point in execute_points)
            assert worst <= 2, f"seed {seed} can exhaust the retry budget"


class TestLegacyFaultInjectorShim:
    def test_construction_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="repro.faults"):
            FaultInjector(seed=1)

    def test_to_plan_mirrors_rates(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            injector = FaultInjector(drop_rate=0.3, error_rate=0.2,
                                     delay_seconds=0.05, seed=2)
        plan = injector.to_plan()
        by_kind = {spec.kind: spec for spec in plan.specs}
        assert by_kind["drop"].probability == 0.3
        assert by_kind["error"].probability == 0.2
        assert by_kind["delay"].delay_seconds == 0.05
        assert all(spec.point == points.INSIGHTS_RPC
                   for spec in plan.specs)

    def test_roll_outcomes_and_live_rate_mutation(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            injector = FaultInjector(drop_rate=1.0, seed=3)
        assert injector.roll()[0] == "drop"
        # Tests (and operators) mutate rates on a live injector; the
        # shim must rebuild its runtime without resetting the RNG.
        injector.drop_rate = 0.0
        injector.error_rate = 1.0
        assert injector.roll()[0] == "error"
        injector.error_rate = 0.0
        injector.delay_seconds = 0.75
        outcome, delay = injector.roll()
        assert outcome == "ok" and delay == 0.75
