"""Unit tests for query-pattern discovery (Section 5.2)."""

import pytest

from repro.workload import generate_workload
from repro.workload.patterns import (
    discover_patterns,
    operator_chains,
    render_patterns,
)
from repro.workload.profiling import compile_only_repository
from repro.workload.repository import WorkloadRepository


@pytest.fixture(scope="module")
def repository():
    workload = generate_workload(seed=6, virtual_clusters=2,
                                 templates_per_vc=6)
    return compile_only_repository(workload, days=2)


class TestOperatorChains:
    def test_chains_run_root_to_leaf(self, repository):
        job_id = repository.jobs[0].job_id
        records = [r for r in repository.subexpressions
                   if r.job_id == job_id]
        chains = operator_chains(records)
        assert chains
        root_op = next(r.operator for r in records
                       if r.parent_node_id is None)
        for chain in chains:
            assert chain[0] == root_op
            assert chain[-1] == "Scan"

    def test_chain_count_equals_leaf_count(self, repository):
        job_id = repository.jobs[0].job_id
        records = [r for r in repository.subexpressions
                   if r.job_id == job_id]
        leaves = sum(1 for r in records if r.operator == "Scan")
        assert len(operator_chains(records)) == leaves


class TestDiscovery:
    def test_recurring_shapes_dominate(self, repository):
        patterns = discover_patterns(repository)
        assert patterns
        top = patterns[0]
        # The hottest chain recurs across jobs and templates.
        assert top.occurrences >= 4
        assert top.distinct_templates >= 2
        # Frequency ordering.
        occurrences = [p.occurrences for p in patterns]
        assert occurrences == sorted(occurrences, reverse=True)

    def test_group_by_aggregation_shape_present(self, repository):
        patterns = discover_patterns(repository)
        assert any("GroupBy" in p.chain and p.chain[-1] == "Scan"
                   for p in patterns)

    def test_min_occurrences_filter(self, repository):
        loose = discover_patterns(repository, min_occurrences=1)
        strict = discover_patterns(repository, min_occurrences=10)
        assert len(strict) <= len(loose)
        assert all(p.occurrences >= 10 for p in strict)

    def test_max_patterns_cap(self, repository):
        assert len(discover_patterns(repository, max_patterns=3)) <= 3

    def test_empty_repository(self):
        assert discover_patterns(WorkloadRepository()) == []

    def test_render(self, repository):
        text = render_patterns(discover_patterns(repository)[:5])
        assert "chain" in text
        assert ">" in text
