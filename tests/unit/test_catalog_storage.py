"""Unit tests for the catalog, data store, and view store."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.common.clock import SECONDS_PER_WEEK
from repro.common.errors import CatalogError, StorageError
from repro.storage import DataStore, ViewStore


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(schema_of("T", [("a", "int"), ("b", "str")]), row_count=10)
    return cat


class TestCatalog:
    def test_register_and_lookup(self, catalog):
        assert catalog.has("T")
        assert catalog.schema("T").column_names == ("a", "b")
        assert catalog.current_version("T").row_count == 10

    def test_duplicate_registration_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.register(schema_of("T", [("x", "int")]))

    def test_unknown_dataset_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.schema("Nope")

    def test_bulk_update_changes_guid(self, catalog):
        old = catalog.current_guid("T")
        version = catalog.bulk_update("T", row_count=20, at=5.0)
        assert version.guid != old
        assert version.reason == "bulk-update"
        assert catalog.current_version("T").row_count == 20

    def test_bulk_update_keeps_rows_by_default(self, catalog):
        catalog.bulk_update("T")
        assert catalog.current_version("T").row_count == 10

    def test_gdpr_forget_reduces_rows_and_changes_guid(self, catalog):
        old = catalog.current_guid("T")
        version = catalog.gdpr_forget("T", rows_removed=3)
        assert version.guid != old
        assert version.row_count == 7
        assert version.reason == "gdpr-forget"

    def test_size_bytes_tracks_schema_width(self, catalog):
        version = catalog.current_version("T")
        assert version.size_bytes == 10 * catalog.schema("T").row_width

    def test_version_history_preserved(self, catalog):
        catalog.bulk_update("T")
        catalog.bulk_update("T")
        assert len(catalog.entry("T").versions) == 3

    def test_duplicate_schema_column_rejected(self):
        with pytest.raises(CatalogError):
            schema_of("Bad", [("a", "int"), ("a", "str")])

    def test_unsupported_type_rejected(self):
        with pytest.raises(CatalogError):
            schema_of("Bad", [("a", "blob")])


class TestDataStore:
    def test_put_get_round_trip(self):
        store = DataStore()
        rows = [{"a": 1}, {"a": 2}]
        store.put("k", rows)
        assert store.get("k") == rows

    def test_get_returns_copy_isolation(self):
        store = DataStore()
        rows = [{"a": 1}]
        store.put("k", rows)
        rows.append({"a": 2})
        assert len(store.get("k")) == 1

    def test_missing_key_raises(self):
        with pytest.raises(StorageError):
            DataStore().get("missing")

    def test_io_accounting(self):
        store = DataStore()
        store.put("k", [{"a": 1, "b": "xy"}] * 4)
        assert store.bytes_written > 0
        before = store.bytes_read
        store.get("k")
        assert store.bytes_read > before


class TestViewStore:
    def test_unsealed_view_not_available(self):
        store = ViewStore()
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        assert store.lookup("sig", now=0.0) is None
        assert store.is_materializing("sig", now=0.0)

    def test_seal_makes_view_available(self):
        store = ViewStore()
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.seal("sig", now=5.0, row_count=10, size_bytes=80)
        view = store.lookup("sig", now=6.0)
        assert view is not None
        assert view.row_count == 10
        assert store.total_created == 1

    def test_view_expires_after_ttl(self):
        store = ViewStore()
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.seal("sig", now=0.0, row_count=1, size_bytes=8)
        assert store.lookup("sig", now=SECONDS_PER_WEEK - 1) is not None
        assert store.lookup("sig", now=SECONDS_PER_WEEK + 1) is None

    def test_custom_ttl(self):
        store = ViewStore(ttl_seconds=10.0)
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.seal("sig", now=0.0, row_count=1, size_bytes=8)
        assert store.lookup("sig", now=11.0) is None

    def test_purge_hides_view(self):
        store = ViewStore()
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.seal("sig", now=0.0, row_count=1, size_bytes=8)
        store.purge("sig")
        assert store.lookup("sig", now=1.0) is None

    def test_abandon_unsealed(self):
        store = ViewStore()
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.abandon("sig")
        assert not store.is_materializing("sig", now=0.0)

    def test_abandon_does_not_touch_sealed(self):
        store = ViewStore()
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.seal("sig", now=0.0, row_count=1, size_bytes=8)
        store.abandon("sig")
        assert store.lookup("sig", now=1.0) is not None

    def test_double_materialize_of_available_view_rejected(self):
        store = ViewStore()
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.seal("sig", now=0.0, row_count=1, size_bytes=8)
        with pytest.raises(StorageError):
            store.begin_materialize("sig", "path", ("a",), "vc1", now=1.0)

    def test_rematerialize_after_expiry_allowed(self):
        store = ViewStore(ttl_seconds=10.0)
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.seal("sig", now=0.0, row_count=1, size_bytes=8)
        store.begin_materialize("sig", "path", ("a",), "vc1", now=20.0)

    def test_reuse_counting(self):
        store = ViewStore()
        store.begin_materialize("sig", "path", ("a",), "vc1", now=0.0)
        store.seal("sig", now=0.0, row_count=1, size_bytes=8)
        store.record_reuse("sig")
        store.record_reuse("sig")
        assert store.total_reused == 2
        assert store.lookup("sig", now=1.0).reuse_count == 2

    def test_evict_expired(self):
        store = ViewStore(ttl_seconds=10.0)
        store.begin_materialize("s1", "p1", ("a",), "vc1", now=0.0)
        store.seal("s1", now=0.0, row_count=1, size_bytes=8)
        store.begin_materialize("s2", "p2", ("a",), "vc1", now=5.0)
        store.seal("s2", now=5.0, row_count=1, size_bytes=8)
        evicted = store.evict_expired(now=12.0)
        assert [v.signature for v in evicted] == ["s1"]
        assert store.total_expired == 1

    def test_storage_accounting(self):
        store = ViewStore()
        store.begin_materialize("s1", "p1", ("a",), "vc1", now=0.0)
        store.seal("s1", now=0.0, row_count=10, size_bytes=100)
        assert store.storage_in_use(now=1.0) == 100
