"""Unit tests: lineage registry, input extraction, and the invalidation bus."""

import threading

import pytest

from repro.lifecycle import (
    GdprForget,
    InvalidationBus,
    LineageRegistry,
    RuntimeEpochBumped,
    StreamGuidChanged,
    extract_inputs,
)
from repro.plan.logical import Filter, Scan, ViewScan
from repro.plan.expressions import BinaryOp, ColumnRef, Literal


def scan(dataset, guid):
    return Scan(dataset=dataset, columns=("a",), stream_guid=guid)


def view_scan(signature):
    return ViewScan(signature=signature, view_path=f"views/{signature}",
                    columns=("a",))


class TestExtractInputs:
    def test_scan_contributes_dataset_and_guid(self):
        inputs = extract_inputs(scan("Events", "g1"))
        assert inputs == frozenset({("Events", "g1")})

    def test_unbound_scan_contributes_nothing(self):
        assert extract_inputs(scan("Events", None)) == frozenset()

    def test_none_definition_is_empty(self):
        assert extract_inputs(None) == frozenset()

    def test_nested_operators_are_walked(self):
        plan = Filter(scan("Events", "g1"),
                      BinaryOp("=", ColumnRef("a"), Literal(1)))
        assert extract_inputs(plan) == frozenset({("Events", "g1")})

    def test_viewscan_inherits_transitive_lineage(self):
        registry = LineageRegistry()
        registry.record("base", frozenset({("Events", "g1"),
                                           ("Users", "g2")}))
        inputs = extract_inputs(view_scan("base"), registry)
        assert inputs == frozenset({("Events", "g1"), ("Users", "g2")})

    def test_viewscan_without_registry_contributes_nothing(self):
        assert extract_inputs(view_scan("base")) == frozenset()


class TestLineageRegistry:
    def test_record_and_reverse_indexes(self):
        registry = LineageRegistry()
        registry.record("v1", frozenset({("Events", "g1")}))
        registry.record("v2", frozenset({("Events", "g1"),
                                         ("Users", "g2")}))
        assert registry.views_reading_dataset("Events") == {"v1", "v2"}
        assert registry.views_reading_dataset("Users") == {"v2"}
        assert registry.views_reading_guid("g1") == {"v1", "v2"}
        assert registry.datasets() == ["Events", "Users"]
        assert len(registry) == 2

    def test_record_overwrites(self):
        registry = LineageRegistry()
        registry.record("v1", frozenset({("Events", "g1")}))
        registry.record("v1", frozenset({("Events", "g2")}))
        assert registry.views_reading_guid("g1") == set()
        assert registry.views_reading_guid("g2") == {"v1"}

    def test_forget_cleans_reverse_indexes(self):
        registry = LineageRegistry()
        registry.record("v1", frozenset({("Events", "g1")}))
        registry.forget("v1")
        assert not registry.has("v1")
        assert registry.views_reading_dataset("Events") == set()
        assert registry.datasets() == []

    def test_forget_unknown_is_noop(self):
        LineageRegistry().forget("nope")

    def test_snapshot_restore_round_trip(self):
        registry = LineageRegistry()
        registry.record("v1", frozenset({("Events", "g1"),
                                         ("Users", "g2")}))
        snapshot = registry.snapshot()
        restored = LineageRegistry()
        restored.restore(snapshot)
        assert restored.inputs_of("v1") == registry.inputs_of("v1")
        assert restored.views_reading_dataset("Users") == {"v1"}

    def test_snapshot_is_json_friendly(self):
        import json
        registry = LineageRegistry()
        registry.record("v1", frozenset({("Events", "g1")}))
        assert json.loads(json.dumps(registry.snapshot())) \
            == {"v1": [["Events", "g1"]]}

    def test_concurrent_record_forget(self):
        registry = LineageRegistry()

        def worker(base):
            for i in range(200):
                sig = f"v{base}-{i % 10}"
                registry.record(sig, frozenset({("D", f"g{i % 3}")}))
                registry.forget(sig)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(registry) == 0
        assert registry.datasets() == []


class TestInvalidationBus:
    def test_synchronous_in_order_delivery(self):
        bus = InvalidationBus()
        seen = []
        bus.subscribe(seen.append)
        first = StreamGuidChanged(at=1.0, dataset="D",
                                  old_guid="g1", new_guid="g2")
        second = GdprForget(at=2.0, dataset="D", new_guid="g3")
        bus.publish(first)
        bus.publish(second)
        assert seen == [first, second]
        assert bus.published == [first, second]

    def test_every_subscriber_sees_every_event(self):
        bus = InvalidationBus()
        a, b = [], []
        bus.subscribe(a.append)
        bus.subscribe(b.append)
        bus.publish(RuntimeEpochBumped(version="r2", epoch=1))
        assert len(a) == len(b) == 1

    def test_event_kinds(self):
        assert StreamGuidChanged().kind == "StreamGuidChanged"
        assert GdprForget().kind == "GdprForget"
        assert RuntimeEpochBumped().kind == "RuntimeEpochBumped"

    def test_events_are_immutable(self):
        event = GdprForget(dataset="D")
        with pytest.raises(Exception):
            event.dataset = "E"
