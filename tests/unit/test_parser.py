"""Unit tests for the SQL parser."""

import pytest

from repro.common.errors import ParseError
from repro.plan.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FuncCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.ast import SubqueryRef, TableRef
from repro.sql.parser import parse


def test_simple_select():
    query = parse("SELECT a, b FROM t")
    assert len(query.selects) == 1
    stmt = query.selects[0]
    assert isinstance(stmt.relation, TableRef)
    assert stmt.relation.name == "t"
    assert [i.expr for i in stmt.items] == [ColumnRef("a"), ColumnRef("b")]


def test_select_star():
    stmt = parse("SELECT * FROM t").selects[0]
    assert isinstance(stmt.items[0].expr, Star)


def test_qualified_star():
    stmt = parse("SELECT t.* FROM t").selects[0]
    assert stmt.items[0].expr == Star("t")


def test_alias_with_and_without_as():
    stmt = parse("SELECT a AS x, b y FROM t").selects[0]
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"


def test_table_alias():
    stmt = parse("SELECT a FROM t AS u").selects[0]
    assert stmt.relation.alias == "u"
    assert stmt.relation.binding_name == "u"


def test_where_predicate_structure():
    stmt = parse("SELECT a FROM t WHERE a = 1 AND b > 2").selects[0]
    assert isinstance(stmt.where, BinaryOp)
    assert stmt.where.op == "AND"


def test_join_without_on_is_natural():
    stmt = parse("SELECT a FROM t JOIN u").selects[0]
    assert len(stmt.joins) == 1
    assert stmt.joins[0].condition is None
    assert stmt.joins[0].how == "inner"


def test_left_join_with_on():
    stmt = parse("SELECT a FROM t LEFT JOIN u ON t.k = u.k").selects[0]
    join = stmt.joins[0]
    assert join.how == "left"
    assert isinstance(join.condition, BinaryOp)


def test_multiple_joins():
    stmt = parse("SELECT a FROM t JOIN u JOIN v").selects[0]
    assert len(stmt.joins) == 2


def test_group_by_and_having():
    stmt = parse(
        "SELECT k, SUM(v) FROM t GROUP BY k HAVING SUM(v) > 10").selects[0]
    assert stmt.group_by == (ColumnRef("k"),)
    assert stmt.having is not None


def test_aggregate_distinct():
    stmt = parse("SELECT COUNT(DISTINCT a) FROM t").selects[0]
    call = stmt.items[0].expr
    assert isinstance(call, FuncCall)
    assert call.distinct


def test_count_star():
    call = parse("SELECT COUNT(*) FROM t").selects[0].items[0].expr
    assert call == FuncCall("COUNT", ())


def test_union_all():
    query = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
    assert len(query.selects) == 2
    assert query.union_all


def test_union_distinct():
    query = parse("SELECT a FROM t UNION SELECT a FROM u")
    assert not query.union_all


def test_order_by_and_limit():
    query = parse("SELECT a, b FROM t ORDER BY a DESC, b LIMIT 5")
    assert query.limit == 5
    assert query.order_by[0].ascending is False
    assert query.order_by[1].ascending is True


def test_subquery_in_from():
    stmt = parse("SELECT x FROM (SELECT a AS x FROM t) AS s").selects[0]
    assert isinstance(stmt.relation, SubqueryRef)
    assert stmt.relation.alias == "s"


def test_process_clause():
    stmt = parse(
        "SELECT a FROM t PROCESS USING MyUdo NONDETERMINISTIC DEPTH 3"
    ).selects[0]
    assert stmt.process.udo_name == "MyUdo"
    assert not stmt.process.deterministic
    assert stmt.process.dependency_depth == 3


def test_parameter_literal():
    stmt = parse("SELECT a FROM t WHERE d = @runDate").selects[0]
    rhs = stmt.where.right
    assert isinstance(rhs, Literal)
    assert rhs.param_name == "runDate"


def test_case_expression():
    expr = parse(
        "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t"
    ).selects[0].items[0].expr
    assert isinstance(expr, CaseWhen)
    assert len(expr.conditions) == 1


def test_is_null():
    stmt = parse("SELECT a FROM t WHERE a IS NULL").selects[0]
    assert stmt.where == UnaryOp("ISNULL", ColumnRef("a"))


def test_is_not_null():
    stmt = parse("SELECT a FROM t WHERE a IS NOT NULL").selects[0]
    assert stmt.where == UnaryOp("ISNOTNULL", ColumnRef("a"))


def test_operator_precedence():
    expr = parse("SELECT a FROM t WHERE a + b * 2 = 7").selects[0].where
    # * binds tighter than +
    assert expr.op == "="
    assert expr.left.op == "+"
    assert expr.left.right.op == "*"


def test_unary_minus():
    expr = parse("SELECT -a FROM t").selects[0].items[0].expr
    assert expr == UnaryOp("-", ColumnRef("a"))


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t extra nonsense !!!")


def test_missing_from_raises():
    with pytest.raises(ParseError):
        parse("SELECT a")


def test_empty_case_raises():
    with pytest.raises(ParseError):
        parse("SELECT CASE END FROM t")
