"""The package version must be stated once, consistently.

``pyproject.toml`` and ``repro.__version__`` drifted apart once (1.1.0
vs 1.2.0); this pins them together.  The TOML is parsed with a regex
because the floor interpreter is Python 3.10, which predates
``tomllib``.
"""

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parents[2] / "pyproject.toml"


def pyproject_version() -> str:
    match = re.search(r'^version\s*=\s*"([^"]+)"',
                      PYPROJECT.read_text(encoding="utf-8"), re.MULTILINE)
    assert match, "pyproject.toml has no version line"
    return match.group(1)


def test_package_version_matches_pyproject():
    assert repro.__version__ == pyproject_version()


def test_version_is_plain_semver():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
