"""Unit tests for repository persistence and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.workload import generate_workload
from repro.workload.persistence import (
    PersistenceError,
    load_repository,
    merge_captures,
    save_repository,
)
from repro.workload.profiling import compile_only_repository


@pytest.fixture(scope="module")
def repository():
    workload = generate_workload(seed=3, virtual_clusters=2,
                                 templates_per_vc=4)
    return compile_only_repository(workload, days=2)


class TestPersistence:
    def test_round_trip(self, repository, tmp_path):
        path = tmp_path / "capture.jsonl"
        save_repository(repository, path)
        loaded = load_repository(path)
        assert loaded.total_jobs() == repository.total_jobs()
        assert loaded.total_subexpressions() == \
            repository.total_subexpressions()
        assert loaded.repeated_fraction() == \
            pytest.approx(repository.repeated_fraction())
        assert loaded.average_repeat_frequency() == \
            pytest.approx(repository.average_repeat_frequency())

    def test_round_trip_preserves_record_fields(self, repository, tmp_path):
        path = tmp_path / "capture.jsonl"
        save_repository(repository, path)
        loaded = load_repository(path)
        original = repository.subexpressions[0]
        restored = loaded.subexpressions[0]
        assert restored == original

    def test_merge_captures(self, repository, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        save_repository(repository, a)
        other = compile_only_repository(
            generate_workload(seed=9, name="cluster9",
                              virtual_clusters=1, templates_per_vc=3),
            days=1)
        save_repository(other, b)
        merged = merge_captures([a, b])
        assert merged.total_jobs() == \
            repository.total_jobs() + other.total_jobs()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_repository(tmp_path / "nope.jsonl")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(PersistenceError):
            load_repository(path)

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header", "format_version": 99}\n')
        with pytest.raises(PersistenceError):
            load_repository(path)

    def test_orphan_subexpression_raises(self, tmp_path):
        path = tmp_path / "orphan.jsonl"
        path.write_text(
            '{"kind": "header", "format_version": 1}\n'
            '{"kind": "subexpression", "job_id": "j"}\n')
        with pytest.raises(PersistenceError):
            load_repository(path)

    def test_invalid_json_line_raises(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text('{"kind": "header", "format_version": 1}\nnot json\n')
        with pytest.raises(PersistenceError):
            load_repository(path)


class TestCli:
    def test_capture_then_analyze(self, tmp_path, capsys):
        path = tmp_path / "cap.jsonl"
        assert main(["capture", str(path), "--days", "2",
                     "--templates-per-vc", "4",
                     "--virtual-clusters", "2"]) == 0
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repeated fraction" in out
        assert "reuse candidates" in out

    def test_explain(self, capsys):
        assert main(["explain",
                     "SELECT RegionId, COUNT(*) AS n FROM Events "
                     "WHERE Day = @runDate GROUP BY RegionId"]) == 0
        out = capsys.readouterr().out
        assert "GroupBy" in out and "Scan Events" in out

    def test_tpcds(self, capsys):
        assert main(["tpcds", "--scale-rows", "600"]) == 0
        out = capsys.readouterr().out
        assert "running-time reduction" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--days", "3",
                     "--templates-per-vc", "6",
                     "--virtual-clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "Latency Improvement" in out
        assert "Views Created" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
