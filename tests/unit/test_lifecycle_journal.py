"""Unit tests: the durable catalog journal (WAL + snapshot + recovery)."""

import json
import os

import pytest

from repro.common.errors import StorageError
from repro.lifecycle import CatalogJournal, LineageRegistry
from repro.lifecycle.journal import record_to_view, view_to_record
from repro.storage.views import ViewStore


def build_store(ttl=100.0):
    store = ViewStore(ttl_seconds=ttl)
    store.begin_materialize("s1", "views/s1", ("a", "b"), "vc1", now=0.0,
                            recurring_signature="r1")
    store.seal("s1", now=1.0, row_count=10, size_bytes=80)
    store.begin_materialize("s2", "views/s2", ("a",), "vc1", now=2.0)
    store.seal("s2", now=3.0, row_count=5, size_bytes=40)
    store.record_reuse("s1")
    return store


class TestViewRecords:
    def test_round_trip_preserves_catalog_record(self):
        store = build_store()
        view = store.get("s1")
        assert record_to_view(view_to_record(view)).catalog_record() \
            == view.catalog_record()

    def test_restored_view_has_no_definition(self):
        store = build_store()
        restored = record_to_view(view_to_record(store.get("s1")))
        assert restored.definition is None
        assert restored.pins == 0


class TestWal:
    def test_append_and_read_back(self, tmp_path):
        journal = CatalogJournal(str(tmp_path))
        journal.append("created", signature="s1")
        journal.append("sealed", signature="s1", sealed_at=1.0,
                       rows=10, bytes=80)
        ops = journal.wal_ops()
        assert [op["op"] for op in ops] == ["created", "sealed"]
        assert journal.ops_written == 2
        journal.close()

    def test_torn_tail_is_tolerated(self, tmp_path):
        journal = CatalogJournal(str(tmp_path))
        journal.append("reused", signature="s1")
        journal.close()
        with open(journal.wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "reused", "signa')  # crash mid-append
        ops = journal.wal_ops()
        assert len(ops) == 1  # intact prefix only

    def test_empty_journal(self, tmp_path):
        journal = CatalogJournal(str(tmp_path))
        assert journal.wal_ops() == []
        assert not journal.stats()["has_snapshot"]


class TestSnapshotAndRecovery:
    def test_snapshot_truncates_wal(self, tmp_path):
        store = build_store()
        journal = CatalogJournal(str(tmp_path))
        journal.append("reused", signature="s1")
        journal.snapshot(store, LineageRegistry())
        assert journal.wal_ops() == []
        assert journal.ops_since_snapshot == 0
        assert os.path.exists(journal.snapshot_path)
        journal.close()

    def test_recover_from_snapshot_reproduces_digest(self, tmp_path):
        store = build_store()
        lineage = LineageRegistry()
        lineage.record("s1", frozenset({("Events", "g1")}))
        journal = CatalogJournal(str(tmp_path))
        journal.snapshot(store, lineage, epoch=3, runtime_version="r9")
        journal.close()

        fresh_store = ViewStore()
        fresh_lineage = LineageRegistry()
        report = CatalogJournal(str(tmp_path)).recover(
            fresh_store, fresh_lineage)
        assert fresh_store.catalog_digest() == store.catalog_digest()
        assert fresh_store.counters() == store.counters()
        assert fresh_lineage.inputs_of("s1") == frozenset({("Events", "g1")})
        assert report.epoch == 3
        assert report.runtime_version == "r9"
        assert report.views_restored == 2
        assert report.skipped == []

    def test_recover_replays_wal_tail(self, tmp_path):
        store = build_store()
        journal = CatalogJournal(str(tmp_path))
        journal.snapshot(store, LineageRegistry())
        # Mutations after the snapshot land only in the WAL.
        store.record_reuse("s2")
        journal.append("reused", signature="s2")
        store.purge("s1", reason="test")
        journal.append("purged", signature="s1", reason="test")
        journal.close()

        fresh = ViewStore()
        CatalogJournal(str(tmp_path)).recover(fresh, LineageRegistry())
        assert fresh.catalog_digest() == store.catalog_digest()
        assert fresh.counters() == store.counters()
        assert fresh.get("s1").purged
        assert fresh.get("s2").reuse_count == 1

    def test_recover_replays_removals(self, tmp_path):
        store = build_store()
        journal = CatalogJournal(str(tmp_path))
        journal.snapshot(store, LineageRegistry())
        store.purge("s2")
        journal.append("purged", signature="s2")
        assert store.remove("s2")
        journal.append("removed", signature="s2")
        journal.close()

        fresh = ViewStore()
        CatalogJournal(str(tmp_path)).recover(fresh, LineageRegistry())
        assert fresh.get("s2") is None
        assert fresh.catalog_digest() == store.catalog_digest()
        assert fresh.counters() == store.counters()

    def test_recover_requires_empty_store(self, tmp_path):
        journal = CatalogJournal(str(tmp_path))
        with pytest.raises(StorageError):
            journal.recover(build_store(), LineageRegistry())

    def test_recover_wal_only_no_snapshot(self, tmp_path):
        store = ViewStore(ttl_seconds=100.0)
        journal = CatalogJournal(str(tmp_path))
        store.begin_materialize("s1", "views/s1", ("a",), "vc1", now=0.0)
        journal.append("created", view=view_to_record(store.get("s1")),
                       lineage=[["Events", "g1"]])
        store.seal("s1", now=1.0, row_count=2, size_bytes=16)
        journal.append("sealed", signature="s1", sealed_at=1.0,
                       rows=2, bytes=16)
        journal.close()

        fresh = ViewStore()
        lineage = LineageRegistry()
        report = CatalogJournal(str(tmp_path)).recover(fresh, lineage)
        assert report.snapshot_views == 0
        assert report.wal_ops == 2
        assert fresh.catalog_digest() == store.catalog_digest()
        assert lineage.views_reading_dataset("Events") == {"s1"}

    def test_unknown_op_is_skipped_not_fatal(self, tmp_path):
        journal = CatalogJournal(str(tmp_path))
        journal.append("flux-capacitor", signature="s1")
        journal.close()
        report = CatalogJournal(str(tmp_path)).recover(
            ViewStore(), LineageRegistry())
        assert report.skipped == [["flux-capacitor", "s1"]]

    def test_snapshot_is_atomic_no_tmp_left_behind(self, tmp_path):
        journal = CatalogJournal(str(tmp_path))
        journal.snapshot(build_store(), LineageRegistry())
        assert not os.path.exists(journal.snapshot_path + ".tmp")
        with open(journal.snapshot_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert len(payload["views"]) == 2
        journal.close()


class TestTornWrites:
    """Injected torn/partial WAL writes and the recovery that skips them."""

    def _journal_with_faults(self, tmp_path, plan_text):
        from repro.faults import FaultPlan, FaultRuntime

        journal = CatalogJournal(str(tmp_path))
        journal.faults = FaultRuntime(FaultPlan.parse(plan_text))
        return journal

    def test_torn_fault_leaves_partial_line_then_heals(self, tmp_path):
        journal = self._journal_with_faults(
            tmp_path, "journal.append:torn:1.0:1")
        with pytest.raises(StorageError, match="torn"):
            journal.append("reused", signature="s2")
        assert journal.stats()["torn_pending"]
        # The next append self-heals: fresh line past the partial record.
        journal.append("purged", signature="s1")
        assert not journal.stats()["torn_pending"]
        journal.close()

        reopened = CatalogJournal(str(tmp_path))
        assert [op["op"] for op in reopened.wal_ops()] == ["purged"]
        assert reopened.last_scan_torn == 1

    def test_storage_fault_lands_no_bytes(self, tmp_path):
        journal = self._journal_with_faults(
            tmp_path, "journal.append:storage:1.0:1")
        with pytest.raises(StorageError, match="storage"):
            journal.append("reused", signature="s1")
        journal.append("reused", signature="s1")
        journal.close()
        assert len(CatalogJournal(str(tmp_path)).wal_ops()) == 1

    def test_mid_file_torn_line_does_not_truncate_replay(self, tmp_path):
        """Regression: wal_ops used to stop at the first bad line,
        silently dropping every op a healed journal appended after it."""
        journal = CatalogJournal(str(tmp_path))
        journal.append("reused", signature="s1")
        journal.close()
        with open(journal.wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "reused", "signa')   # torn, no newline
            handle.write('\n{"op": "purged", "signature": "s1"}\n')
        reopened = CatalogJournal(str(tmp_path))
        ops = reopened.wal_ops()
        assert [op["op"] for op in ops] == ["reused", "purged"]
        assert reopened.last_scan_torn == 1

    def test_recover_reports_torn_lines_and_keeps_tail(self, tmp_path):
        store = build_store()
        journal = CatalogJournal(str(tmp_path))
        journal.snapshot(store, LineageRegistry())
        store.record_reuse("s1")
        journal.append("reused", signature="s1")
        journal.close()
        with open(journal.wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "reused", "si')      # crash mid-append

        fresh = ViewStore()
        report = CatalogJournal(str(tmp_path)).recover(
            fresh, LineageRegistry())
        assert report.torn_lines == 1
        assert report.skipped == []
        assert fresh.catalog_digest() == store.catalog_digest()

    def test_decodable_but_malformed_op_skipped_not_fatal(self, tmp_path):
        journal = CatalogJournal(str(tmp_path))
        journal.append("sealed", signature="s1")       # missing payload
        journal.close()
        report = CatalogJournal(str(tmp_path)).recover(
            ViewStore(), LineageRegistry())
        assert report.skipped == [["sealed", "s1"]]
