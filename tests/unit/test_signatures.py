"""Unit tests for strict/recurring signatures and eligibility."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.plan import Filter, PlanBuilder, Process, Scan, Spool, normalize
from repro.signatures import (
    enumerate_subexpressions,
    is_reuse_eligible,
    recurring_signature,
    signature_tag,
    strict_signature,
)
from repro.sql import parse


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(schema_of("Sales", [
        ("CustomerId", "int"), ("Price", "float"), ("Day", "str")]), 100)
    cat.register(schema_of("Customer", [
        ("CustomerId", "int"), ("MktSegment", "str")]), 50)
    return cat


def build(catalog, sql, params=None):
    return normalize(PlanBuilder(catalog, params).build(parse(sql)))


def test_identical_queries_same_strict_signature(catalog):
    sql = "SELECT CustomerId FROM Sales WHERE Price > 5"
    assert strict_signature(build(catalog, sql)) == \
        strict_signature(build(catalog, sql))


def test_commutative_predicates_normalize(catalog):
    a = build(catalog, "SELECT CustomerId FROM Sales WHERE Price > 5 AND CustomerId = 1")
    b = build(catalog, "SELECT CustomerId FROM Sales WHERE CustomerId = 1 AND Price > 5")
    assert strict_signature(a) == strict_signature(b)


def test_flipped_comparison_normalizes(catalog):
    a = build(catalog, "SELECT CustomerId FROM Sales WHERE Price > 5")
    b = build(catalog, "SELECT CustomerId FROM Sales WHERE 5 < Price")
    assert strict_signature(a) == strict_signature(b)


def test_semantically_different_predicates_differ(catalog):
    a = build(catalog, "SELECT CustomerId FROM Sales WHERE Price > 5")
    b = build(catalog, "SELECT CustomerId FROM Sales WHERE Price > 6")
    assert strict_signature(a) != strict_signature(b)


def test_syntactic_only_no_algebraic_equivalence(catalog):
    """The paper's stated limitation: 2*x > 10 is NOT matched with x > 5."""
    a = build(catalog, "SELECT CustomerId FROM Sales WHERE CustomerId > 5")
    b = build(catalog, "SELECT CustomerId FROM Sales WHERE 2 * CustomerId > 10")
    assert strict_signature(a) != strict_signature(b)


def test_strict_signature_changes_on_bulk_update(catalog):
    sql = "SELECT CustomerId FROM Sales"
    before = strict_signature(build(catalog, sql))
    catalog.bulk_update("Sales")
    after = strict_signature(build(catalog, sql))
    assert before != after


def test_recurring_signature_survives_bulk_update(catalog):
    sql = "SELECT CustomerId FROM Sales"
    before = recurring_signature(build(catalog, sql))
    catalog.bulk_update("Sales")
    after = recurring_signature(build(catalog, sql))
    assert before == after


def test_strict_signature_changes_with_gdpr_forget(catalog):
    sql = "SELECT CustomerId FROM Sales"
    before = strict_signature(build(catalog, sql))
    catalog.gdpr_forget("Sales", rows_removed=1)
    after = strict_signature(build(catalog, sql))
    assert before != after


def test_param_values_in_strict_not_in_recurring(catalog):
    sql = "SELECT CustomerId FROM Sales WHERE Day = @run"
    a = build(catalog, sql, params={"run": "2020-02-01"})
    b = build(catalog, sql, params={"run": "2020-02-02"})
    assert strict_signature(a) != strict_signature(b)
    assert recurring_signature(a) == recurring_signature(b)


def test_plain_literal_stays_in_recurring(catalog):
    a = build(catalog, "SELECT CustomerId FROM Sales WHERE Day = 'x'")
    b = build(catalog, "SELECT CustomerId FROM Sales WHERE Day = 'y'")
    assert recurring_signature(a) != recurring_signature(b)


def test_salt_models_runtime_version_change(catalog):
    plan = build(catalog, "SELECT CustomerId FROM Sales")
    assert strict_signature(plan, salt="v1") != strict_signature(plan, salt="v2")


def test_spool_is_transparent(catalog):
    plan = build(catalog, "SELECT CustomerId FROM Sales WHERE Price > 5")
    spooled = Spool(plan, signature="sig", view_path="p")
    assert strict_signature(spooled) == strict_signature(plan)


def test_nondeterministic_udo_ineligible(catalog):
    plan = build(catalog, "SELECT CustomerId FROM Sales "
                          "PROCESS USING NowStamp NONDETERMINISTIC")
    assert not is_reuse_eligible(plan)


def test_deep_dependency_chain_ineligible(catalog):
    plan = build(catalog, "SELECT CustomerId FROM Sales "
                          "PROCESS USING DeepLib DEPTH 99")
    assert not is_reuse_eligible(plan)


def test_shallow_deterministic_udo_eligible(catalog):
    plan = build(catalog, "SELECT CustomerId FROM Sales "
                          "PROCESS USING Scrub DEPTH 3")
    assert is_reuse_eligible(plan)


def test_udo_name_is_part_of_signature(catalog):
    a = build(catalog, "SELECT CustomerId FROM Sales PROCESS USING U1")
    b = build(catalog, "SELECT CustomerId FROM Sales PROCESS USING U2")
    assert strict_signature(a) != strict_signature(b)


def test_enumerate_subexpressions_root_first(catalog):
    plan = build(catalog,
                 "SELECT CustomerId FROM Sales JOIN Customer "
                 "WHERE MktSegment = 'Asia'")
    subs = enumerate_subexpressions(plan)
    assert subs[0].plan is plan
    assert subs[0].depth == 0
    assert subs[0].height == max(s.height for s in subs)
    leaf_ops = {s.operator for s in subs if s.is_leaf}
    assert leaf_ops == {"Scan"}


def test_enumerate_marks_ineligible_subtrees(catalog):
    plan = build(catalog, "SELECT CustomerId FROM Sales "
                          "PROCESS USING X NONDETERMINISTIC")
    subs = enumerate_subexpressions(plan)
    root = subs[0]
    assert not root.eligible
    scan = next(s for s in subs if isinstance(s.plan, Scan))
    assert scan.eligible  # the scan below the UDO is still fine


def test_tag_is_short_and_stable(catalog):
    plan = build(catalog, "SELECT CustomerId FROM Sales")
    sig = recurring_signature(plan)
    assert signature_tag(sig) == signature_tag(sig)
    assert len(signature_tag(sig)) == 8
