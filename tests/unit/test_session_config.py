"""SessionConfig: environment loading, serialization, and the
kwarg-overrides-config precedence contract of ``Session``.
"""

import pytest

from repro.api import Session
from repro.backends import InMemoryBackend, SqliteBackend
from repro.common.errors import ConfigError
from repro.config import SessionConfig
from repro.engine.engine import EngineConfig
from repro.scheduler.scheduler import SchedulerConfig
from repro.shard import ShardConfig


class TestFromEnv:
    def test_empty_environment_keeps_defaults(self):
        config = SessionConfig.from_env({})
        assert config.backend == "memory"
        assert config.sqlite_path is None
        assert config.lifecycle is None
        assert config.selection_algorithm == "greedy"

    def test_reads_backend_and_path(self):
        config = SessionConfig.from_env({
            "REPRO_BACKEND": "sqlite",
            "REPRO_SQLITE_PATH": "/tmp/views.db",
        })
        assert config.backend == "sqlite"
        assert config.sqlite_path == "/tmp/views.db"

    def test_reads_workers_ttl_selection(self):
        config = SessionConfig.from_env({
            "REPRO_WORKERS": "8",
            "REPRO_VIEW_TTL": "3600",
            "REPRO_SELECTION": "bigsubs",
        })
        assert config.scheduler.workers == 8
        assert config.engine.view_ttl_seconds == 3600.0
        assert config.selection_algorithm == "bigsubs"

    def test_reads_shards(self):
        config = SessionConfig.from_env({"REPRO_SHARDS": "4"})
        assert config.shards == 4
        assert config.resolve_shard().shards == 4

    def test_lifecycle_only_when_requested(self):
        config = SessionConfig.from_env({
            "REPRO_JOURNAL_DIR": "/tmp/journal",
            "REPRO_STORAGE_BUDGET": "1000000",
        })
        assert config.lifecycle is not None
        assert config.lifecycle.journal_dir == "/tmp/journal"
        assert config.lifecycle.storage_budget_bytes == 1_000_000


class TestToDict:
    def test_round_trips_to_plain_data(self):
        dumped = SessionConfig(backend="sqlite").to_dict()
        assert dumped["backend"] == "sqlite"
        assert isinstance(dumped["engine"], dict)
        assert isinstance(dumped["scheduler"], dict)
        # Must be JSON-serializable all the way down.
        import json
        json.dumps(dumped)

    def test_shard_config_dumps_as_plain_data(self):
        import json
        dumped = SessionConfig(
            shard=ShardConfig(shards=2, restart_dead=False)).to_dict()
        assert dumped["shard"]["shards"] == 2
        assert dumped["shard"]["restart_dead"] is False
        json.dumps(dumped)


class TestResolveShard:
    def test_default_is_in_process(self):
        assert SessionConfig().resolve_shard() is None

    def test_shards_count_builds_default_deployment(self):
        resolved = SessionConfig(shards=4).resolve_shard()
        assert resolved.shards == 4
        assert resolved.restart_dead is True

    def test_full_shard_config_wins_over_count(self):
        config = SessionConfig(
            shards=8, shard=ShardConfig(shards=2, restart_dead=False))
        resolved = config.resolve_shard()
        assert resolved.shards == 2
        assert resolved.restart_dead is False

    def test_disabled_shard_config_falls_back_to_count(self):
        config = SessionConfig(shards=3, shard=ShardConfig(shards=0))
        assert config.resolve_shard().shards == 3

    def test_negative_shards_rejected(self):
        with pytest.raises(ConfigError):
            ShardConfig(shards=-1)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ConfigError):
            ShardConfig(shards=2, start_method="teleport")


class TestSessionPrecedence:
    def test_config_selects_backend(self):
        with Session(config=SessionConfig(backend="sqlite")) as session:
            assert isinstance(session.backend, SqliteBackend)

    def test_backend_kwarg_overrides_config(self):
        config = SessionConfig(backend="sqlite")
        with Session(config=config, backend="memory") as session:
            assert isinstance(session.backend, InMemoryBackend)

    def test_backend_instance_passes_through(self):
        backend = InMemoryBackend()
        with Session(backend=backend) as session:
            assert session.backend is backend

    def test_engine_config_kwarg_overrides_config(self):
        config = SessionConfig(engine=EngineConfig(view_ttl_seconds=10.0))
        override = EngineConfig(view_ttl_seconds=99.0)
        with Session(config=config, engine_config=override) as session:
            assert session.engine.config.view_ttl_seconds == 99.0

    def test_scheduler_config_comes_from_config(self):
        config = SessionConfig(scheduler=SchedulerConfig(workers=2))
        with Session(config=config) as session:
            assert session.scheduler.config.workers == 2

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigError):
            Session(backend="postgres")
