"""Unit tests for the static concurrency analyzer.

Two anchors: every seeded violation in
``tests/fixtures/concurrency_violations`` must be detected, and the real
``src/repro`` tree must produce zero error-severity ``concurrency-*``
findings (the CI gate).
"""

import os

import pytest

import repro
from repro.analysis.concurrency import build_index
from repro.analysis.concurrency.model import find_cycles
from repro.analysis.framework import Analyzer

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "fixtures",
                        "concurrency_violations")


@pytest.fixture(scope="module")
def fixture_report():
    return Analyzer().analyze_source(build_index(FIXTURES))


@pytest.fixture(scope="module")
def fixture_index():
    return build_index(FIXTURES)


@pytest.fixture(scope="module")
def real_tree_report():
    root = os.path.dirname(repro.__file__)
    return Analyzer().analyze_source(build_index(root))


def _findings(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestSeededViolationsDetected:
    def test_lock_order_cycle(self, fixture_report):
        findings = _findings(fixture_report, "concurrency-lock-order")
        cycles = [f for f in findings if "cycle" in f.message]
        assert any("CycledPair" in f.message for f in cycles)
        assert all(f.severity == "error" for f in cycles)

    def test_rank_hierarchy_inversion(self, fixture_report):
        findings = _findings(fixture_report, "concurrency-lock-order")
        inversions = [f for f in findings if "hierarchy" in f.message]
        assert any("fixture.high" in f.message
                   and "fixture.low" in f.message for f in inversions)

    def test_sleep_under_lock(self, fixture_report):
        findings = _findings(fixture_report,
                             "concurrency-blocking-under-lock")
        sleeps = [f for f in findings if f.detail.get("kind") == "sleep"]
        assert len(sleeps) == 1
        assert sleeps[0].severity == "error"
        assert "nap_under_lock" in sleeps[0].message

    def test_unbounded_wait_and_queue_get(self, fixture_report):
        findings = _findings(fixture_report,
                             "concurrency-blocking-under-lock")
        kinds = {f.detail.get("kind") for f in findings
                 if f.severity == "error"}
        assert "wait" in kinds
        assert "queue-get" in kinds

    def test_unbalanced_acquire(self, fixture_report):
        findings = _findings(fixture_report,
                             "concurrency-unbalanced-acquire")
        assert len(findings) == 1
        assert "LeakyGuard.bump" in findings[0].message
        # The balanced try/finally sibling must NOT be flagged.
        assert "balanced" not in findings[0].message

    def test_unguarded_shared_write(self, fixture_report):
        findings = _findings(fixture_report,
                             "concurrency-unguarded-shared-write")
        assert len(findings) == 1
        assert "RacyCounter.count" in findings[0].message

    def test_untracked_locks_are_info(self, fixture_report):
        findings = _findings(fixture_report, "concurrency-untracked-lock")
        assert findings and all(f.severity == "info" for f in findings)

    def test_all_four_seeded_categories_are_errors(self, fixture_report):
        error_rules = {f.rule for f in fixture_report.errors}
        assert error_rules >= {
            "concurrency-lock-order",
            "concurrency-blocking-under-lock",
            "concurrency-unbalanced-acquire",
            "concurrency-unguarded-shared-write",
        }


class TestExtraction:
    def test_lock_declarations_resolved(self, fixture_index):
        decl = fixture_index.lock(("RankInverter", "_low_mutex"))
        assert decl is not None
        assert decl.tracked
        assert decl.tracked_name == "fixture.low"
        assert decl.rank == 100

    def test_raw_lock_declaration(self, fixture_index):
        decl = fixture_index.lock(("CycledPair", "_table_mutex"))
        assert decl is not None
        assert not decl.tracked
        assert decl.lock_type == "Lock"

    def test_acquisition_edges_and_cycles(self, fixture_index):
        edges = fixture_index.acquisition_edges()
        pairs = {(e.holder, e.acquired) for e in edges}
        assert (("CycledPair", "_table_mutex"),
                ("CycledPair", "_index_mutex")) in pairs
        assert (("CycledPair", "_index_mutex"),
                ("CycledPair", "_table_mutex")) in pairs
        cycles = find_cycles(edges)
        assert any({("CycledPair", "_table_mutex"),
                    ("CycledPair", "_index_mutex")} == set(c)
                   for c in cycles)

    def test_thread_reachability(self, fixture_index):
        reachable = fixture_index.thread_reachable()
        assert "RacyCounter._run" in reachable
        assert "RacyCounter.reset" not in reachable

    def test_real_tree_rank_constants_are_folded(self):
        """Tracked-lock ranks in src/repro resolve against the RANK_*
        constants, so the static check shares the runtime's hierarchy."""
        root = os.path.dirname(repro.__file__)
        index = build_index(root)
        ranks = {d.tracked_name: d.rank for d in index.all_locks()
                 if d.tracked}
        assert ranks["storage.views"] == 210
        assert ranks["insights.service"] == 320
        assert ranks["lifecycle.bus"] == 520
        assert all(rank is not None for rank in ranks.values())


class TestRealTreeIsClean:
    def test_no_error_severity_concurrency_findings(self, real_tree_report):
        errors = [f for f in real_tree_report.errors
                  if f.rule.startswith("concurrency-")]
        assert errors == [], "\n".join(f.render() for f in errors)

    def test_journal_io_is_flagged_warn_not_error(self, real_tree_report):
        """The WAL append/snapshot I/O under the journal mutex is the
        sanctioned site: visible as warnings, not CI-blocking errors."""
        io_warns = [f for f in real_tree_report.warnings
                    if f.rule == "concurrency-blocking-under-lock"
                    and "journal" in f.path]
        assert io_warns, "expected the journal's I/O-under-lock warnings"

    def test_no_untracked_locks_outside_sync(self, real_tree_report):
        infos = [f for f in real_tree_report.findings
                 if f.rule == "concurrency-untracked-lock"]
        assert infos == [], "\n".join(f.render() for f in infos)
