"""Unit tests for the tracing and event-log pillars plus the recorder."""

import pytest

from repro.obs import (
    Event,
    EventLog,
    FlightRecorder,
    NullRecorder,
    Span,
    Tracer,
    load_capture,
    replay_counters,
)


class TestTracer:
    def test_span_nesting_and_durations(self):
        tracer = Tracer()
        parent = tracer.start_span("job.compile", trace_id="job-1", at=10.0)
        child = tracer.start_span("insights.fetch", trace_id="job-1",
                                  at=10.0, parent=parent)
        child.finish(at=10.015)
        parent.finish(at=10.015)
        spans = tracer.trace("job-1")
        assert [s.name for s in spans] == ["job.compile", "insights.fetch"]
        assert spans[1].parent_id == spans[0].span_id
        assert spans[1].duration == pytest.approx(0.015)

    def test_flamegraph_renders_nesting(self):
        tracer = Tracer()
        parent = tracer.start_span("job.compile", trace_id="j", at=0.0)
        tracer.start_span("view.match", trace_id="j", at=0.0,
                          parent=parent).annotate("matches", 2).finish(at=0.0)
        parent.finish(at=0.1)
        text = tracer.render_flamegraph("j")
        lines = text.splitlines()
        assert "job.compile" in lines[1]
        assert lines[2].startswith("  view.match")
        assert "matches=2" in lines[2]

    def test_flamegraph_empty_trace(self):
        assert "no spans" in Tracer().render_flamegraph("missing")

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        span = tracer.start_span("cluster.schedule", trace_id="job-9",
                                 at=5.0, virtual_cluster="vc0")
        span.finish(at=9.0)
        path = tmp_path / "spans.jsonl"
        assert tracer.dump_jsonl(str(path)) == 1
        loaded = Tracer.load_jsonl(str(path))
        assert len(loaded) == 1
        assert loaded[0].name == "cluster.schedule"
        assert loaded[0].trace_id == "job-9"
        assert loaded[0].duration == pytest.approx(4.0)
        assert loaded[0].attrs == {"virtual_cluster": "vc0"}


class TestEventLog:
    def test_emit_filter_and_counts(self):
        log = EventLog()
        log.emit("view.sealed", at=10.0, job_id="job-1", rows=5)
        log.emit("view.sealed", at=90000.0, job_id="job-2", rows=7)
        log.emit("lock.denied", at=90001.0, job_id="job-3")
        assert len(log) == 3
        assert len(log.events(kind="view.sealed")) == 2
        assert [e.job_id for e in log.since_day(1)] == ["job-2", "job-3"]
        assert log.counts() == {"view.sealed": 2, "lock.denied": 1}

    def test_subscribers_get_live_delivery(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        event = log.emit("killswitch.flip", at=1.0, enabled=False)
        assert seen == [event]

    def test_jsonl_round_trip_and_replay(self, tmp_path):
        log = EventLog()
        log.emit("view.created", at=1.0, job_id="job-1", signature="abc")
        log.emit("view.sealed", at=2.0, job_id="job-1", signature="abc")
        log.emit("view.sealed", at=3.0, job_id="job-2", signature="def")
        path = tmp_path / "events.jsonl"
        assert log.dump_jsonl(str(path)) == 3
        loaded = EventLog.load_jsonl(str(path))
        assert [e.kind for e in loaded] == \
            [e.kind for e in log.events()]
        assert loaded[0].attrs["signature"] == "abc"
        assert replay_counters(loaded) == {
            "events.view.created": 1.0,
            "events.view.sealed": 2.0,
        }


class TestFlightRecorder:
    def test_event_mirrors_counter(self):
        recorder = FlightRecorder()
        recorder.event("view.sealed", at=4.0, job_id="j")
        recorder.event("view.sealed", at=5.0, job_id="k")
        assert recorder.metrics.counter("events.view.sealed") == 2
        assert len(recorder.events) == 2

    def test_clock_is_monotonic_and_stamps_events(self):
        recorder = FlightRecorder()
        recorder.advance_to(100.0)
        event = recorder.event("lock.denied")  # no explicit at
        assert event.at == 100.0
        recorder.advance_to(50.0)  # cannot go backwards
        assert recorder.now == 100.0

    def test_dump_and_load_capture(self, tmp_path):
        recorder = FlightRecorder()
        recorder.inc("jobs", 2)
        recorder.start_span("job.compile", trace_id="job-1",
                            at=0.0).finish(at=0.1)
        recorder.event("view.sealed", at=1.0, job_id="job-1")
        directory = str(tmp_path / "capture")
        recorder.dump(directory)
        capture = load_capture(directory)
        assert capture["metrics"]["counters"]["jobs"] == 2
        assert len(capture["spans"]) == 1
        assert len(capture["events"]) == 1
        assert isinstance(capture["spans"][0], Span)
        assert isinstance(capture["events"][0], Event)

    def test_render_summary_mentions_latency(self):
        recorder = FlightRecorder()
        recorder.observe("insights.fetch.latency", 0.015)
        recorder.event("view.sealed", at=0.0)
        summary = recorder.render_summary()
        assert "insights.fetch.latency" in summary
        assert "view.sealed=1" in summary


class TestNullRecorder:
    def test_everything_is_a_no_op(self):
        recorder = NullRecorder()
        recorder.inc("x")
        recorder.observe("y", 1.0)
        recorder.set_gauge("z", 2.0)
        span = recorder.start_span("job.compile", trace_id="j", at=0.0)
        span.annotate("k", "v").finish(at=1.0)
        assert recorder.event("view.sealed", at=1.0) is None
        assert recorder.metrics.counters == {}
        assert len(recorder.tracer) == 0
        assert len(recorder.events) == 0
        assert not recorder.enabled
        assert recorder.dump("/nonexistent/never/created") == {}
