"""The execution-backend interface: registry, capabilities, and the
backend contract exercised directly (no engine on top).
"""

import pytest

from repro.backends import (
    BackendCapabilities,
    ExecutionBackend,
    InMemoryBackend,
    SqliteBackend,
    backend_names,
    create_backend,
)
from repro.catalog import Catalog, schema_of
from repro.common.errors import ConfigError, StorageError
from repro.plan import PlanBuilder, normalize
from repro.sql import parse


class TestRegistry:
    def test_builtin_names(self):
        assert {"memory", "sqlite"} <= set(backend_names())

    def test_create_by_name(self):
        with create_backend("memory") as backend:
            assert isinstance(backend, InMemoryBackend)
        with create_backend("sqlite") as backend:
            assert isinstance(backend, SqliteBackend)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigError, match="memory"):
            create_backend("oracle")

    def test_capabilities(self):
        assert InMemoryBackend.capabilities == BackendCapabilities(
            supports_udos=True, supports_row_capture=True,
            deterministic_limit=True, external=False)
        caps = SqliteBackend.capabilities
        assert caps.external and not caps.supports_udos

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            ExecutionBackend()


@pytest.fixture(params=["memory", "sqlite"])
def loaded(request):
    """Either backend with one table loaded, plus a plan builder."""
    backend = create_backend(request.param)
    catalog = Catalog()
    schema = schema_of("T", [("k", "int"), ("v", "float")])
    version = catalog.register(schema, 3)
    backend.load_table(schema, version.guid, [
        dict(k=1, v=1.5), dict(k=2, v=2.5), dict(k=2, v=4.0)])
    builder = PlanBuilder(catalog)
    yield backend, version.guid, builder
    backend.close()


def plan_for(builder, sql):
    builder.params = {}
    return normalize(builder.build(parse(sql)))


class TestBackendContract:
    def test_scan_table_round_trip(self, loaded):
        backend, guid, _ = loaded
        assert backend.scan_table(guid) == [
            dict(k=1, v=1.5), dict(k=2, v=2.5), dict(k=2, v=4.0)]

    def test_scan_missing_table_raises(self, loaded):
        backend, _, _ = loaded
        with pytest.raises(StorageError):
            backend.scan_table("no-such-guid")

    def test_drop_table_then_scan_raises(self, loaded):
        backend, guid, _ = loaded
        backend.drop_table(guid)
        with pytest.raises(StorageError):
            backend.scan_table(guid)
        backend.drop_table(guid)  # idempotent

    def test_execute_returns_rows_and_stats(self, loaded):
        backend, _, builder = loaded
        result = backend.execute(plan_for(
            builder, "SELECT k, SUM(v) AS s FROM T GROUP BY k"))
        assert sorted(map(repr, result.rows)) == sorted(map(repr, [
            dict(k=1, s=1.5), dict(k=2, s=6.5)]))
        assert result.node_stats
        for _, stats in result.node_stats:
            assert stats.rows_out >= 0 and stats.bytes_out >= 0

    def test_materialize_scan_drop_view(self, loaded):
        backend, _, builder = loaded
        plan = plan_for(builder, "SELECT k FROM T WHERE v > 2")
        rows, size = backend.materialize_view(plan, "views/test-view")
        assert rows == 2 and size > 0
        assert sorted(r["k"] for r in backend.scan_view("views/test-view")) \
            == [2, 2]
        backend.drop_view("views/test-view")
        with pytest.raises(StorageError):
            backend.scan_view("views/test-view")

    def test_drop_absent_view_is_noop(self, loaded):
        backend, _, _ = loaded
        backend.drop_view("views/never-existed")

    def test_materialized_size_matches_both_backends(self):
        # The (rows, bytes) a view seals with feeds catalog_digest();
        # both backends must account identically.
        catalog = Catalog()
        schema = schema_of("T", [("k", "int"), ("s", "str")])
        version = catalog.register(schema, 2)
        rows = [dict(k=1, s="abc"), dict(k=None, s=None)]
        sizes = {}
        for name in ("memory", "sqlite"):
            with create_backend(name) as backend:
                backend.load_table(schema, version.guid, rows)
                builder = PlanBuilder(catalog)
                sizes[name] = backend.materialize_view(
                    plan_for(builder, "SELECT k, s FROM T"), "views/v")
        assert sizes["memory"] == sizes["sqlite"]
