"""Unit tests for expression evaluation and canonicalization."""

import pytest

from repro.common.errors import ExecutionError
from repro.plan.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FuncCall,
    Literal,
    Star,
    UnaryOp,
    conjoin,
    conjuncts,
    rewrite,
)


def col(name):
    return ColumnRef(name)


def lit(value):
    return Literal(value)


class TestEvaluation:
    def test_column_lookup(self):
        assert col("a").evaluate({"a": 5}) == 5

    def test_qualified_column_lookup(self):
        ref = ColumnRef("a", table="t")
        assert ref.evaluate({"t.a": 7}) == 7

    def test_qualified_falls_back_to_plain(self):
        ref = ColumnRef("a", table="t")
        assert ref.evaluate({"a": 7}) == 7

    def test_missing_column_raises(self):
        with pytest.raises(ExecutionError):
            col("missing").evaluate({"a": 1})

    def test_arithmetic(self):
        expr = BinaryOp("+", col("a"), BinaryOp("*", col("b"), lit(2)))
        assert expr.evaluate({"a": 1, "b": 3}) == 7

    def test_division_by_zero_is_null(self):
        assert BinaryOp("/", lit(1), lit(0)).evaluate({}) is None

    def test_null_propagates_through_arithmetic(self):
        assert BinaryOp("+", lit(None), lit(1)).evaluate({}) is None

    def test_comparison_with_null_is_false(self):
        assert BinaryOp("=", lit(None), lit(None)).evaluate({}) is False

    def test_comparisons(self):
        row = {"a": 2}
        assert BinaryOp("<", col("a"), lit(3)).evaluate(row) is True
        assert BinaryOp(">=", col("a"), lit(2)).evaluate(row) is True
        assert BinaryOp("<>", col("a"), lit(2)).evaluate(row) is False

    def test_boolean_connectives(self):
        t, f = lit(True), lit(False)
        assert BinaryOp("AND", t, f).evaluate({}) is False
        assert BinaryOp("OR", f, t).evaluate({}) is True
        assert UnaryOp("NOT", f).evaluate({}) is True

    def test_is_null_operators(self):
        assert UnaryOp("ISNULL", lit(None)).evaluate({}) is True
        assert UnaryOp("ISNOTNULL", lit(None)).evaluate({}) is False

    def test_scalar_functions(self):
        assert FuncCall("UPPER", (lit("abc"),)).evaluate({}) == "ABC"
        assert FuncCall("ABS", (lit(-4),)).evaluate({}) == 4
        assert FuncCall("COALESCE", (lit(None), lit(2))).evaluate({}) == 2
        assert FuncCall("YEAR", (lit("2020-03-01"),)).evaluate({}) == 2020
        assert FuncCall("SUBSTR", (lit("hello"), lit(1), lit(3))).evaluate({}) == "ell"

    def test_unknown_scalar_function_raises(self):
        with pytest.raises(ExecutionError):
            FuncCall("NOPE", (lit(1),)).evaluate({})

    def test_aggregate_cannot_be_evaluated_directly(self):
        with pytest.raises(ExecutionError):
            FuncCall("SUM", (col("a"),)).evaluate({"a": 1})

    def test_star_cannot_be_evaluated(self):
        with pytest.raises(ExecutionError):
            Star().evaluate({})

    def test_case_when(self):
        expr = CaseWhen((BinaryOp(">", col("a"), lit(0)),),
                        (lit("pos"),), lit("neg"))
        assert expr.evaluate({"a": 5}) == "pos"
        assert expr.evaluate({"a": -5}) == "neg"

    def test_case_without_default_yields_null(self):
        expr = CaseWhen((lit(False),), (lit(1),))
        assert expr.evaluate({}) is None


class TestCanonical:
    def test_commutative_equality(self):
        ab = BinaryOp("=", col("a"), col("b"))
        ba = BinaryOp("=", col("b"), col("a"))
        assert ab.canonical() == ba.canonical()

    def test_comparison_flip(self):
        lt = BinaryOp("<", col("b"), col("a"))
        gt = BinaryOp(">", col("a"), col("b"))
        assert lt.canonical() == gt.canonical()

    def test_non_commutative_preserved(self):
        ab = BinaryOp("-", col("a"), col("b"))
        ba = BinaryOp("-", col("b"), col("a"))
        assert ab.canonical() != ba.canonical()

    def test_literal_type_matters(self):
        assert lit(1).canonical() != lit("1").canonical()

    def test_param_literal_recurring_form(self):
        bound = Literal("2020-03-01", param_name="runDate")
        assert "runDate" in bound.recurring_canonical()
        assert "2020-03-01" not in bound.recurring_canonical()


class TestHelpers:
    def test_conjuncts_flatten(self):
        pred = BinaryOp("AND", BinaryOp("AND", lit(1), lit(2)), lit(3))
        assert [c.value for c in conjuncts(pred)] == [1, 2, 3]

    def test_conjoin_round_trip(self):
        parts = [lit(1), lit(2), lit(3)]
        assert conjuncts(conjoin(parts)) == parts

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None

    def test_rewrite_replaces_nodes(self):
        expr = BinaryOp("+", col("a"), col("b"))
        result = rewrite(
            expr, lambda e: lit(0) if isinstance(e, ColumnRef) else None)
        assert result == BinaryOp("+", lit(0), lit(0))

    def test_rewrite_identity_returns_same_tree(self):
        expr = BinaryOp("+", col("a"), col("b"))
        assert rewrite(expr, lambda e: None) is expr

    def test_columns_traversal(self):
        expr = BinaryOp("+", col("a"), FuncCall("ABS", (col("b"),)))
        assert sorted(expr.columns()) == ["a", "b"]

    def test_is_aggregate_detection(self):
        assert FuncCall("SUM", (col("a"),)).is_aggregate()
        assert BinaryOp("+", FuncCall("MAX", (col("a"),)), lit(1)).is_aggregate()
        assert not FuncCall("UPPER", (col("a"),)).is_aggregate()

    def test_output_names(self):
        assert col("a").output_name() == "a"
        assert FuncCall("AVG", (col("Price"),)).output_name() == "avg_Price"
