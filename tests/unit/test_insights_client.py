"""Unit tests for the fault-tolerant insights client.

Covers the TTL'd local cache, retries with backoff, the circuit
breaker's full closed -> open -> half-open -> closed cycle, fault
injection, and the degradation contract the engine relies on (a failed
fetch returns an empty mapping and flags ``last_fetch_degraded`` instead
of raising).
"""

import pytest

from repro.common.errors import ConfigError, InsightsTimeout, ReproError
from repro.insights import (
    CircuitBreaker,
    FaultInjector,
    InsightsClient,
    InsightsClientConfig,
    InsightsService,
)
from repro.optimizer.context import Annotation


def annotation(tag="tag-1", recurring="rec-1"):
    return Annotation(recurring_signature=recurring, tag=tag,
                      expected_rows=10, expected_bytes=100)


def publish_one(target, tag="tag-1", recurring="rec-1"):
    target.publish([annotation(tag=tag, recurring=recurring)])


class TestConfigValidation:
    def test_defaults_are_valid(self):
        InsightsClientConfig()

    @pytest.mark.parametrize("kwargs", [
        dict(timeout_seconds=0.0),
        dict(timeout_seconds=-1.0),
        dict(max_retries=-1),
        dict(breaker_failure_threshold=0),
        dict(breaker_cooldown_fetches=0),
    ])
    def test_bad_values_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            InsightsClientConfig(**kwargs)

    def test_config_error_is_repro_and_value_error(self):
        with pytest.raises(ReproError):
            InsightsClientConfig(max_retries=-1)
        with pytest.raises(ValueError):
            InsightsClientConfig(max_retries=-1)

    def test_injector_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultInjector(drop_rate=1.5)
        with pytest.raises(ConfigError):
            FaultInjector(error_rate=-0.1)

    def test_insights_timeout_is_repro_error(self):
        assert issubclass(InsightsTimeout, ReproError)


class TestServingPath:
    def test_fetch_matches_raw_service(self):
        service = InsightsService()
        client = InsightsClient(service)
        publish_one(client)
        direct = InsightsService()
        publish_one(direct)
        assert set(client.fetch_annotations(["tag-1", "ghost"])) == \
            set(direct.fetch_annotations(["tag-1", "ghost"]))

    def test_local_cache_hits_skip_the_service(self):
        client = InsightsClient()
        publish_one(client)
        client.fetch_annotations(["tag-1"], now=0.0)
        before = client.metrics.snapshot()
        result = client.fetch_annotations(["tag-1"], now=1.0)
        after = client.metrics.snapshot()
        assert result["rec-1"].tag == "tag-1"
        assert client.cache_hits == 1
        # Per-job fetches still counted; no new serving-layer tag lookups.
        assert after["fetches"] == before["fetches"] + 1
        assert after["cache_misses"] == before["cache_misses"]
        assert after["cache_hits"] == before["cache_hits"]

    def test_cache_expires_after_ttl(self):
        client = InsightsClient(
            config=InsightsClientConfig(cache_ttl_seconds=10.0))
        publish_one(client)
        client.fetch_annotations(["tag-1"], now=0.0)
        client.fetch_annotations(["tag-1"], now=11.0)
        assert client.cache_misses == 2
        assert client.cache_hits == 0

    def test_publish_invalidates_cache(self):
        client = InsightsClient()
        publish_one(client)
        client.fetch_annotations(["tag-1"], now=0.0)
        publish_one(client, recurring="rec-2")
        result = client.fetch_annotations(["tag-1"], now=0.0)
        assert set(result) == {"rec-2"}
        assert client.cache_misses == 2

    def test_kill_switch_returns_empty_not_degraded(self):
        client = InsightsClient()
        publish_one(client)
        client.enabled = False
        assert client.fetch_annotations(["tag-1"]) == {}
        assert client.last_fetch_degraded is False

    def test_latency_accounting_is_simulated(self):
        client = InsightsClient()
        publish_one(client)
        client.fetch_annotations(["tag-1"], now=0.0)
        assert client.last_fetch_latency == pytest.approx(0.015)


class TestRetriesAndDegradation:
    def test_injected_errors_retry_then_succeed(self):
        # error_rate=1.0 for the first roll only: use a counting injector.
        class OneShot(FaultInjector):
            def __init__(self):
                super().__init__(error_rate=1.0)
                self.rolls = 0

            def roll(self):
                self.rolls += 1
                if self.rolls == 1:
                    return "error", 0.0
                return "ok", 0.0

        client = InsightsClient(injector=OneShot())
        publish_one(client)
        result = client.fetch_annotations(["tag-1"], now=0.0)
        assert "rec-1" in result
        assert client.retries == 1
        assert client.last_fetch_degraded is False
        # Latency charges the failed attempt's timeout plus backoff.
        assert client.last_fetch_latency > client.config.timeout_seconds

    def test_exhausted_retries_degrade_instead_of_raising(self):
        client = InsightsClient(
            config=InsightsClientConfig(max_retries=1),
            injector=FaultInjector(error_rate=1.0))
        publish_one(client)
        assert client.fetch_annotations(["tag-1"], now=0.0) == {}
        assert client.last_fetch_degraded is True
        assert client.degraded_fetches == 1

    def test_degraded_flag_resets_on_next_success(self):
        injector = FaultInjector(error_rate=1.0)
        client = InsightsClient(
            config=InsightsClientConfig(max_retries=0), injector=injector)
        publish_one(client)
        client.fetch_annotations(["tag-1"], now=0.0)
        assert client.last_fetch_degraded is True
        injector.error_rate = 0.0
        client.fetch_annotations(["tag-1"], now=0.0)
        assert client.last_fetch_degraded is False

    def test_slow_round_trip_times_out(self):
        client = InsightsClient(
            config=InsightsClientConfig(max_retries=0),
            injector=FaultInjector(delay_seconds=1.0))
        publish_one(client)
        assert client.fetch_annotations(["tag-1"], now=0.0) == {}
        assert client.last_fetch_degraded is True

    def test_backoff_grows_exponentially(self):
        config = InsightsClientConfig(
            backoff_base_seconds=0.010, backoff_multiplier=2.0,
            backoff_jitter=0.0)
        client = InsightsClient(config=config)
        assert client._backoff(0) == pytest.approx(0.010)
        assert client._backoff(1) == pytest.approx(0.020)
        assert client._backoff(2) == pytest.approx(0.040)


class TestCircuitBreaker:
    def config(self, **kwargs):
        defaults = dict(max_retries=0, breaker_failure_threshold=3,
                        breaker_cooldown_fetches=4, breaker_probes_to_close=1)
        defaults.update(kwargs)
        return InsightsClientConfig(**defaults)

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(self.config())
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.state == "open"

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(self.config())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False
        assert breaker.state == "closed"

    def test_full_open_half_open_close_cycle(self):
        client = InsightsClient(
            config=self.config(), injector=FaultInjector(error_rate=1.0))
        publish_one(client)
        # Three exhausted fetches open the breaker.
        for _ in range(3):
            client.fetch_annotations(["tag-1"], now=0.0)
        assert client.breaker.state == "open"
        # While open, fetches degrade without touching the service.
        fetches_before = client.metrics.snapshot()["fetches"]
        for _ in range(3):
            assert client.fetch_annotations(["tag-1"], now=0.0) == {}
            assert client.last_fetch_degraded is True
        assert client.breaker.state == "open"
        # Heal the service; the cooldown's next fetch runs as a probe.
        client.injector.error_rate = 0.0
        result = client.fetch_annotations(["tag-1"], now=0.0)
        assert "rec-1" in result
        assert client.breaker.state == "closed"
        assert client.breaker.transitions == ["open", "half-open", "closed"]

    def test_failed_probe_reopens(self):
        client = InsightsClient(
            config=self.config(), injector=FaultInjector(error_rate=1.0))
        publish_one(client)
        for _ in range(3):
            client.fetch_annotations(["tag-1"], now=0.0)
        for _ in range(3):
            client.fetch_annotations(["tag-1"], now=0.0)
        # Still failing: the half-open probe fails and reopens.
        client.fetch_annotations(["tag-1"], now=0.0)
        assert client.breaker.state == "open"
        assert client.breaker.transitions == ["open", "half-open", "open"]


class TestHalfOpenTransition:
    """Breaker-level coverage of the open -> half-open handoff: the
    cool-down count, probe bounding, and both probe outcomes."""

    def config(self, **kwargs):
        defaults = dict(max_retries=0, breaker_failure_threshold=3,
                        breaker_cooldown_fetches=4, breaker_probes_to_close=1)
        defaults.update(kwargs)
        return InsightsClientConfig(**defaults)

    def opened(self, **kwargs):
        breaker = CircuitBreaker(self.config(**kwargs))
        for _ in range(breaker._config.breaker_failure_threshold):
            breaker.record_failure()
        assert breaker.state == "open"
        return breaker

    def test_cooldown_fetch_count_gates_the_probe(self):
        breaker = self.opened()
        # Fetches 1..3 while open degrade; the 4th is admitted as the
        # half-open probe (cooldown_fetches=4).
        assert [breaker.admit() for _ in range(3)] == ["degrade"] * 3
        assert breaker.state == "open"
        assert breaker.admit() == "attempt"
        assert breaker.state == "half-open"
        assert breaker.transitions == ["open", "half-open"]

    def test_half_open_bounds_concurrent_probes(self):
        breaker = self.opened(breaker_probes_to_close=2)
        for _ in range(4):
            breaker.admit()
        assert breaker.state == "half-open"
        # One probe slot was taken by the transition itself; with
        # probes_to_close=2 exactly one more caller is admitted, and
        # everybody after that degrades until the probes report back.
        assert breaker.admit() == "attempt"
        assert breaker.admit() == "degrade"
        assert breaker.admit() == "degrade"

    def test_close_requires_all_probe_successes(self):
        breaker = self.opened(breaker_probes_to_close=2)
        for _ in range(4):
            breaker.admit()
        breaker.admit()  # second probe
        breaker.record_success()
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.transitions == ["open", "half-open", "closed"]

    def test_probe_success_frees_a_probe_slot(self):
        breaker = self.opened(breaker_probes_to_close=2)
        for _ in range(4):
            breaker.admit()
        breaker.admit()
        assert breaker.admit() == "degrade"
        breaker.record_success()  # one probe back: a slot frees up
        assert breaker.admit() == "attempt"

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker = self.opened()
        for _ in range(4):
            breaker.admit()
        assert breaker.state == "half-open"
        assert breaker.record_failure() is True
        assert breaker.state == "open"
        assert breaker.transitions == ["open", "half-open", "open"]
        # The cool-down counter restarted: three more degraded fetches
        # before the next probe is admitted.
        assert [breaker.admit() for _ in range(3)] == ["degrade"] * 3
        assert breaker.admit() == "attempt"


class TestLockPassthrough:
    def test_lock_operations_hit_the_service_directly(self):
        service = InsightsService()
        client = InsightsClient(service)
        assert client.acquire_view_lock("sig", holder="job-1")
        assert not client.acquire_view_lock("sig", holder="job-2")
        assert client.lock_holder("sig") == "job-1"
        assert service.held_locks() == {"sig": "job-1"}
        client.report_view_available("sig", holder="job-1")
        assert client.held_locks() == {}

    def test_locks_stay_consistent_while_breaker_open(self):
        client = InsightsClient(
            config=InsightsClientConfig(
                max_retries=0, breaker_failure_threshold=1),
            injector=FaultInjector(error_rate=1.0))
        publish_one(client)
        client.fetch_annotations(["tag-1"], now=0.0)
        assert client.breaker.state == "open"
        # The serving path is degraded, but the lock table still answers:
        # it guards buildout and must stay strongly consistent.
        assert client.acquire_view_lock("sig", holder="job-1")
        client.release_view_lock("sig", holder="job-1")
