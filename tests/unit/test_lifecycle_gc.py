"""Unit tests: GC scoring, the janitor thread, and the manager's sweep."""

import threading
import time

import pytest

from repro.common.clock import SECONDS_PER_DAY
from repro.engine import ScopeEngine
from repro.engine.engine import EngineConfig
from repro.lifecycle import (
    GcJanitor,
    LifecycleConfig,
    LifecycleManager,
    SweepResult,
    gc_score,
)
from repro.storage.views import MaterializedView


def view(signature="s", reuse=0, size=100, age_days=0.0, now=0.0):
    created = now - age_days * SECONDS_PER_DAY
    return MaterializedView(
        signature=signature, path=f"views/{signature}", schema=("a",),
        virtual_cluster="vc1", created_at=created,
        expires_at=created + 7 * SECONDS_PER_DAY,
        row_count=1, size_bytes=size, sealed=True, sealed_at=created,
        reuse_count=reuse)


class TestGcScore:
    def test_reuse_raises_score(self):
        now = 10.0
        assert gc_score(view(reuse=5, now=now), now) \
            > gc_score(view(reuse=0, now=now), now)

    def test_size_lowers_score(self):
        now = 10.0
        assert gc_score(view(size=10, now=now), now) \
            > gc_score(view(size=10_000, now=now), now)

    def test_age_lowers_score(self):
        now = 5 * SECONDS_PER_DAY
        assert gc_score(view(age_days=0.5, now=now), now) \
            > gc_score(view(age_days=5.0, now=now), now)

    def test_fresh_zero_reuse_view_is_finite(self):
        assert gc_score(view(size=0), 0.0) == 1.0


class TestGcJanitor:
    def test_run_once_counts_and_records(self):
        calls = []

        def sweep(now):
            calls.append(now)
            return SweepResult(at=now)

        janitor = GcJanitor(sweep, interval_seconds=60.0,
                            clock=lambda: 42.0)
        result = janitor.run_once()
        assert calls == [42.0]
        assert janitor.sweeps == 1
        assert janitor.last_result is result

    def test_explicit_now_overrides_clock(self):
        seen = []
        janitor = GcJanitor(lambda now: seen.append(now) or SweepResult(),
                            clock=lambda: 1.0)
        janitor.run_once(now=99.0)
        assert seen == [99.0]

    def test_background_thread_sweeps_and_stops(self):
        done = threading.Event()

        def sweep(now):
            done.set()
            return SweepResult(at=now)

        janitor = GcJanitor(sweep, interval_seconds=0.01)
        janitor.start()
        assert janitor.running
        assert done.wait(timeout=5.0)
        janitor.stop()
        assert not janitor.running

    def test_start_is_idempotent(self):
        janitor = GcJanitor(lambda now: SweepResult(), interval_seconds=60.0)
        janitor.start()
        thread = janitor._thread
        janitor.start()
        assert janitor._thread is thread
        janitor.stop()

    def test_sweep_exception_does_not_kill_the_loop(self):
        attempts = []

        def sweep(now):
            attempts.append(now)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return SweepResult(at=now)

        janitor = GcJanitor(sweep, interval_seconds=0.01)
        janitor.start()
        deadline = time.time() + 5.0
        while len(attempts) < 2 and time.time() < deadline:
            time.sleep(0.01)
        janitor.stop()
        assert len(attempts) >= 2

    def test_stop_is_idempotent(self):
        janitor = GcJanitor(lambda now: SweepResult(), interval_seconds=0.01)
        assert janitor.stop() is True  # never started
        janitor.start()
        assert janitor.stop() is True
        assert janitor.stop() is True  # after a successful stop
        assert not janitor.running

    def test_stop_reports_join_timeout_and_can_retry(self):
        """A wedged sweep must not be silently leaked: stop() returns
        False, emits gc.stop_timeout, and a later stop() succeeds once
        the sweep unblocks."""
        from repro.obs import events as obs_events
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder()
        in_sweep = threading.Event()
        release = threading.Event()

        def sweep(now):
            in_sweep.set()
            release.wait(timeout=30.0)
            return SweepResult(at=now)

        janitor = GcJanitor(sweep, interval_seconds=0.001,
                            recorder=recorder)
        janitor.start()
        assert in_sweep.wait(timeout=5.0)
        try:
            assert janitor.stop(timeout=0.05) is False
            assert janitor.running  # thread handle kept for retry
            events = recorder.events.events(obs_events.GC_STOP_TIMEOUT)
            assert len(events) == 1
            assert events[0].attrs["timeout_seconds"] == 0.05
        finally:
            release.set()
        assert janitor.stop(timeout=5.0) is True
        assert not janitor.running


@pytest.fixture
def managed_engine():
    engine = ScopeEngine(config=EngineConfig(view_ttl_seconds=100.0))
    manager = LifecycleManager(engine, LifecycleConfig())
    yield engine, manager
    manager.close()


def seal(engine, signature, now, size=100, rows=1):
    engine.view_store.begin_materialize(
        signature, f"views/{signature}", ("a",), "vc1", now=now)
    engine.view_store.seal(signature, now=now, row_count=rows,
                           size_bytes=size)
    engine.store.put(f"views/{signature}", [{"a": 1}] * rows)


class TestManagerSweep:
    def test_expired_views_are_collected_with_blobs(self, managed_engine):
        engine, manager = managed_engine
        seal(engine, "s1", now=0.0)
        result = manager.sweep(now=150.0)
        assert result.expired == 1
        assert result.removed == 0  # evict_expired already dropped it
        assert engine.view_store.get("s1") is None
        assert not engine.store.has("views/s1")

    def test_purged_views_are_hard_removed(self, managed_engine):
        engine, manager = managed_engine
        seal(engine, "s1", now=0.0)
        engine.view_store.purge("s1")
        result = manager.sweep(now=10.0)
        assert result.removed == 1
        assert engine.view_store.get("s1") is None
        assert not engine.store.has("views/s1")

    def test_pinned_view_survives_sweep(self, managed_engine):
        engine, manager = managed_engine
        seal(engine, "s1", now=0.0)
        # The reader pinned before the purge landed; a purged view is no
        # longer pinnable (pin() refuses it), but an already-held pin
        # keeps the record until the reader finishes.
        assert engine.view_store.pin("s1")
        engine.view_store.purge("s1")
        assert not engine.view_store.pin("s1")  # new readers are refused
        result = manager.sweep(now=10.0)
        assert result.removed == 0
        assert result.pinned_skipped == 1
        assert engine.view_store.get("s1") is not None
        engine.view_store.unpin("s1")
        assert manager.sweep(now=11.0).removed == 1

    def test_pinned_expired_view_survives_until_unpin(self, managed_engine):
        engine, manager = managed_engine
        seal(engine, "s1", now=0.0)
        engine.view_store.pin("s1")
        result = manager.sweep(now=150.0)  # past expiry
        assert result.expired == 0
        assert engine.view_store.get("s1") is not None
        engine.view_store.unpin("s1")
        assert manager.sweep(now=151.0).total_collected == 1

    def test_sweep_reports_reclaimed_bytes(self, managed_engine):
        engine, manager = managed_engine
        seal(engine, "s1", now=0.0, size=500)
        result = manager.sweep(now=50.0)
        assert result.reclaimed_bytes == 0  # still live
        seal(engine, "s2", now=60.0, size=300)
        result = manager.sweep(now=200.0)  # s1 and s2 both expired
        assert result.expired == 2


class TestBudgetEviction:
    @pytest.fixture
    def budgeted(self):
        engine = ScopeEngine(config=EngineConfig(view_ttl_seconds=1000.0))
        manager = LifecycleManager(
            engine, LifecycleConfig(storage_budget_bytes=250))
        yield engine, manager
        manager.close()

    def test_worst_scoring_views_evicted_first(self, budgeted):
        engine, manager = budgeted
        seal(engine, "cold", now=0.0, size=100)
        seal(engine, "hot", now=0.0, size=100)
        seal(engine, "warm", now=0.0, size=100)
        for _ in range(5):
            engine.view_store.record_reuse("hot")
        engine.view_store.record_reuse("warm")
        result = manager.sweep(now=10.0)
        assert result.budget_evicted == 1
        assert result.evicted_signatures == ["cold"]
        assert engine.view_store.get("hot") is not None
        assert engine.view_store.storage_in_use(10.0) <= 250

    def test_under_budget_evicts_nothing(self, budgeted):
        engine, manager = budgeted
        seal(engine, "s1", now=0.0, size=100)
        assert manager.sweep(now=1.0).budget_evicted == 0

    def test_pinned_views_skip_budget_eviction(self, budgeted):
        engine, manager = budgeted
        seal(engine, "a", now=0.0, size=200)
        seal(engine, "b", now=0.0, size=200)
        engine.view_store.pin("a")
        engine.view_store.pin("b")
        result = manager.sweep(now=1.0)
        assert result.budget_evicted == 0
        assert engine.view_store.storage_in_use(1.0) == 400  # over, but safe
        engine.view_store.unpin("a")
        engine.view_store.unpin("b")
        assert manager.sweep(now=2.0).budget_evicted >= 1
