"""Unit tests for the optional containment-based matching (Section 5.3)."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.executor import Executor
from repro.optimizer import OptimizerContext, match_views
from repro.plan import Filter, PlanBuilder, ViewScan, normalize
from repro.optimizer.rules import apply_rewrites
from repro.signatures import recurring_signature, strict_signature
from repro.sql import parse
from repro.storage import DataStore, ViewStore


@pytest.fixture
def env():
    catalog = Catalog()
    store = DataStore()
    version = catalog.register(
        schema_of("Sales", [("CustomerId", "int"), ("Price", "float")]), 200)
    store.put(version.guid,
              [dict(CustomerId=i % 40, Price=float(i)) for i in range(200)])
    return catalog, store


def plan_for(catalog, sql):
    return normalize(apply_rewrites(PlanBuilder(catalog).build(parse(sql))))


def filter_subplan(plan):
    return next(n for n in plan.walk() if isinstance(n, Filter))


def materialize(ctx, store, executor, view_plan, now=0.0):
    signature = strict_signature(view_plan)
    rows = executor.execute(view_plan).rows
    path = f"views/{signature}"
    store.put(path, rows)
    ctx.view_store.begin_materialize(
        signature, path, view_plan.schema, "vc", now,
        recurring_signature=recurring_signature(view_plan),
        definition=view_plan)
    ctx.view_store.seal(signature, now, len(rows), len(rows) * 16)
    return signature


class TestContainmentMatching:
    def test_contained_query_answered_with_compensation(self, env):
        catalog, store = env
        executor = Executor(store)
        ctx = OptimizerContext(catalog=catalog, view_store=ViewStore(),
                               enable_containment=True)
        view_plan = filter_subplan(plan_for(
            catalog, "SELECT CustomerId, Price FROM Sales "
                     "WHERE CustomerId > 5"))
        materialize(ctx, store, executor, view_plan)

        query = plan_for(catalog,
                         "SELECT CustomerId, Price FROM Sales "
                         "WHERE CustomerId > 10")
        outcome = match_views(query, ctx, now=1.0)
        assert outcome.reused
        # Compensating filter over the view scan.
        assert any(isinstance(n, ViewScan) for n in outcome.plan.walk())
        rewritten_rows = executor.execute(outcome.plan).rows
        expected_rows = executor.execute(query).rows
        assert sorted(map(repr, rewritten_rows)) == \
            sorted(map(repr, expected_rows))

    def test_non_contained_query_not_rewritten(self, env):
        catalog, store = env
        executor = Executor(store)
        ctx = OptimizerContext(catalog=catalog, view_store=ViewStore(),
                               enable_containment=True)
        view_plan = filter_subplan(plan_for(
            catalog, "SELECT CustomerId, Price FROM Sales "
                     "WHERE CustomerId > 20"))
        materialize(ctx, store, executor, view_plan)
        query = plan_for(catalog,
                         "SELECT CustomerId, Price FROM Sales "
                         "WHERE CustomerId > 10")  # wider than the view
        assert not match_views(query, ctx, now=1.0).reused

    def test_flag_off_means_no_containment(self, env):
        catalog, store = env
        executor = Executor(store)
        ctx = OptimizerContext(catalog=catalog, view_store=ViewStore(),
                               enable_containment=False)
        view_plan = filter_subplan(plan_for(
            catalog, "SELECT CustomerId, Price FROM Sales "
                     "WHERE CustomerId > 5"))
        materialize(ctx, store, executor, view_plan)
        query = plan_for(catalog,
                         "SELECT CustomerId, Price FROM Sales "
                         "WHERE CustomerId > 10")
        assert not match_views(query, ctx, now=1.0).reused

    def test_exact_match_preferred_over_containment(self, env):
        catalog, store = env
        executor = Executor(store)
        ctx = OptimizerContext(catalog=catalog, view_store=ViewStore(),
                               enable_containment=True)
        general = filter_subplan(plan_for(
            catalog, "SELECT CustomerId, Price FROM Sales "
                     "WHERE CustomerId > 5"))
        exact = filter_subplan(plan_for(
            catalog, "SELECT CustomerId, Price FROM Sales "
                     "WHERE CustomerId > 10"))
        materialize(ctx, store, executor, general)
        exact_sig = materialize(ctx, store, executor, exact, now=0.5)
        query = plan_for(catalog,
                         "SELECT CustomerId, Price FROM Sales "
                         "WHERE CustomerId > 10")
        outcome = match_views(query, ctx, now=1.0)
        assert outcome.reused
        assert outcome.matches[0].signature == exact_sig

    def test_stale_general_view_ignored(self, env):
        catalog, store = env
        executor = Executor(store)
        ctx = OptimizerContext(catalog=catalog,
                               view_store=ViewStore(ttl_seconds=10.0),
                               enable_containment=True)
        view_plan = filter_subplan(plan_for(
            catalog, "SELECT CustomerId, Price FROM Sales "
                     "WHERE CustomerId > 5"))
        materialize(ctx, store, executor, view_plan)
        query = plan_for(catalog,
                         "SELECT CustomerId, Price FROM Sales "
                         "WHERE CustomerId > 10")
        assert not match_views(query, ctx, now=100.0).reused
