"""Unit tests for plan normalization and logical-plan utilities."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.plan import (
    Filter,
    Join,
    PlanBuilder,
    Project,
    Scan,
    contains_operator,
    normalize,
    plan_size,
)
from repro.plan.expressions import BinaryOp, ColumnRef, Literal
from repro.sql import parse


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(schema_of("T", [("a", "int"), ("b", "int"), ("c", "str")]), 10)
    cat.register(schema_of("U", [("a", "int"), ("d", "str")]), 5)
    return cat


def build(catalog, sql):
    return PlanBuilder(catalog).build(parse(sql))


def pred(col, op, value):
    return BinaryOp(op, ColumnRef(col), Literal(value))


class TestNormalize:
    def test_merges_filter_chains(self, catalog):
        scan = Scan("T", ("a", "b", "c"), "g")
        nested = Filter(Filter(scan, pred("a", ">", 1)), pred("b", "<", 5))
        merged = normalize(nested)
        assert isinstance(merged, Filter)
        assert isinstance(merged.child, Scan)

    def test_conjunct_order_canonical(self, catalog):
        scan = Scan("T", ("a", "b", "c"), "g")
        ab = normalize(Filter(scan, BinaryOp(
            "AND", pred("a", ">", 1), pred("b", "<", 5))))
        ba = normalize(Filter(scan, BinaryOp(
            "AND", pred("b", "<", 5), pred("a", ">", 1))))
        assert ab == ba

    def test_duplicate_conjuncts_deduplicated(self, catalog):
        scan = Scan("T", ("a", "b", "c"), "g")
        doubled = Filter(scan, BinaryOp(
            "AND", pred("a", ">", 1), pred("a", ">", 1)))
        merged = normalize(doubled)
        assert merged.predicate == pred("a", ">", 1)

    def test_identity_project_removed(self, catalog):
        scan = Scan("T", ("a", "b", "c"), "g")
        identity = Project(scan, (ColumnRef("a"), ColumnRef("b"),
                                  ColumnRef("c")), ("a", "b", "c"))
        assert normalize(identity) is scan

    def test_renaming_project_kept(self, catalog):
        scan = Scan("T", ("a", "b", "c"), "g")
        renaming = Project(scan, (ColumnRef("a"),), ("x",))
        assert normalize(renaming) == renaming

    def test_reordering_project_kept(self, catalog):
        scan = Scan("T", ("a", "b", "c"), "g")
        reordering = Project(scan, (ColumnRef("b"), ColumnRef("a"),
                                    ColumnRef("c")), ("b", "a", "c"))
        assert isinstance(normalize(reordering), Project)

    def test_join_key_pairs_sorted(self, catalog):
        left = Scan("T", ("a", "b", "c"), "g1")
        right = Scan("U", ("a", "d"), "g2")
        j1 = Join(left, right,
                  (ColumnRef("b"), ColumnRef("a")),
                  (ColumnRef("d"), ColumnRef("a")))
        j2 = Join(left, right,
                  (ColumnRef("a"), ColumnRef("b")),
                  (ColumnRef("a"), ColumnRef("d")))
        assert normalize(j1) == normalize(j2)

    def test_idempotent(self, catalog):
        plan = build(catalog,
                     "SELECT a, COUNT(*) FROM T JOIN U "
                     "WHERE b > 3 AND c = 'x' GROUP BY a")
        once = normalize(plan)
        assert normalize(once) == once


class TestPlanUtilities:
    def test_plan_size(self, catalog):
        plan = build(catalog, "SELECT a FROM T WHERE b > 1")
        assert plan_size(plan) == 3  # Project, Filter, Scan

    def test_contains_operator(self, catalog):
        plan = build(catalog, "SELECT a FROM T JOIN U")
        assert contains_operator(plan, Join)
        from repro.plan import GroupBy
        assert not contains_operator(plan, GroupBy)

    def test_explain_is_indented_tree(self, catalog):
        plan = build(catalog, "SELECT a FROM T WHERE b > 1")
        lines = plan.explain().splitlines()
        assert lines[0].startswith("Project")
        assert lines[1].startswith("  Filter")
        assert lines[2].startswith("    Scan")

    def test_schema_propagation_through_join(self, catalog):
        plan = build(catalog, "SELECT * FROM T JOIN U")
        # Natural join on `a`: the duplicate right copy is dropped.
        assert plan.schema == ("a", "b", "c", "d")

    def test_with_children_arity_checked(self, catalog):
        scan = Scan("T", ("a",), "g")
        from repro.common.errors import PlanError
        with pytest.raises(PlanError):
            scan.with_children([scan])

    def test_invalid_join_type_rejected(self):
        from repro.common.errors import PlanError
        left = Scan("T", ("a",), "g1")
        right = Scan("U", ("a",), "g2")
        with pytest.raises(PlanError):
            Join(left, right, how="full")

    def test_union_arity_mismatch_rejected(self):
        from repro.common.errors import PlanError
        from repro.plan import Union
        one = Scan("T", ("a",), "g1")
        two = Scan("U", ("a", "d"), "g2")
        with pytest.raises(PlanError):
            Union((one, two))

    def test_negative_limit_rejected(self):
        from repro.common.errors import PlanError
        from repro.plan import Limit
        with pytest.raises(PlanError):
            Limit(Scan("T", ("a",), "g"), -1)
