"""Edge-case tests across the frontend and engine."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.common.errors import BindError, CatalogError, ParseError
from repro.engine import ScopeEngine
from repro.plan import PlanBuilder, normalize
from repro.sql import parse


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("T", [("a", "int"), ("b", "str"), ("c", "float")]),
        [dict(a=1, b="x", c=1.5), dict(a=2, b="y", c=2.5),
         dict(a=None, b=None, c=None)])
    return eng


class TestNullHandling:
    def test_nulls_filtered_by_comparison(self, engine):
        run = engine.run_sql("SELECT a FROM T WHERE a > 0",
                             reuse_enabled=False)
        assert sorted(r["a"] for r in run.rows) == [1, 2]

    def test_is_null(self, engine):
        run = engine.run_sql("SELECT b FROM T WHERE a IS NULL",
                             reuse_enabled=False)
        assert run.rows == [{"b": None}]

    def test_aggregates_skip_nulls(self, engine):
        run = engine.run_sql(
            "SELECT COUNT(a) AS ca, COUNT(*) AS cs, AVG(c) AS avg FROM T",
            reuse_enabled=False)
        assert run.rows == [{"ca": 2, "cs": 3, "avg": 2.0}]

    def test_group_by_null_key_forms_group(self, engine):
        run = engine.run_sql("SELECT a, COUNT(*) AS n FROM T GROUP BY a",
                             reuse_enabled=False)
        assert len(run.rows) == 3

    def test_null_sorts_first(self, engine):
        run = engine.run_sql("SELECT a FROM T ORDER BY a",
                             reuse_enabled=False)
        assert run.rows[0]["a"] is None


class TestParserEdges:
    def test_empty_string(self):
        with pytest.raises(ParseError):
            parse("")

    def test_keyword_as_identifier_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT SELECT FROM T")

    def test_deeply_nested_parentheses(self):
        query = parse("SELECT ((((a)))) FROM T")
        assert query.selects[0].items[0].expr.name == "a"

    def test_nested_subqueries(self):
        query = parse(
            "SELECT x FROM (SELECT x FROM (SELECT a AS x FROM T) AS i) AS o")
        assert query.selects[0].relation.alias == "o"

    def test_case_insensitive_functions(self):
        expr = parse("SELECT sum(a) FROM T").selects[0].items[0].expr
        assert expr.name == "SUM"

    def test_negative_literal_in_comparison(self):
        stmt = parse("SELECT a FROM T WHERE a > -5").selects[0]
        assert stmt.where.right.op == "-"

    def test_string_with_unicode(self):
        stmt = parse("SELECT a FROM T WHERE b = 'héllo→世界'").selects[0]
        assert stmt.where.right.value == "héllo→世界"

    def test_comment_only_after_statement(self):
        query = parse("SELECT a FROM T -- trailing comment")
        assert query.selects[0].relation.name == "T"


class TestBuilderEdges:
    @pytest.fixture
    def catalog(self):
        cat = Catalog()
        cat.register(schema_of("T", [("a", "int"), ("b", "str")]), 5)
        return cat

    def test_self_join_with_aliases(self, catalog):
        plan = PlanBuilder(catalog).build(parse(
            "SELECT x.a FROM T x JOIN T y ON x.a = y.a"))
        assert plan.schema == ("a",)

    def test_self_join_without_aliases_rejected(self, catalog):
        with pytest.raises(BindError):
            PlanBuilder(catalog).build(parse(
                "SELECT a FROM T JOIN T ON a = a"))

    def test_group_by_qualified_column(self, catalog):
        plan = PlanBuilder(catalog).build(parse(
            "SELECT t.a, COUNT(*) AS n FROM T t GROUP BY t.a"))
        assert plan.schema == ("a", "n")

    def test_unbound_param_left_symbolic(self, catalog):
        plan = PlanBuilder(catalog).build(parse(
            "SELECT a FROM T WHERE b = @later"))
        from repro.plan import Filter
        flt = next(n for n in plan.walk() if isinstance(n, Filter))
        assert flt.predicate.right.param_name == "later"
        assert flt.predicate.right.value is None

    def test_extra_params_ignored(self, catalog):
        plan = PlanBuilder(catalog, params={"unused": 1}).build(parse(
            "SELECT a FROM T"))
        assert plan.schema == ("a",)


class TestEngineEdges:
    def test_empty_table(self):
        engine = ScopeEngine()
        engine.register_table(schema_of("E", [("x", "int")]), [])
        run = engine.run_sql("SELECT x, COUNT(*) AS n FROM E GROUP BY x",
                             reuse_enabled=False)
        assert run.rows == []

    def test_duplicate_table_registration_rejected(self, engine):
        with pytest.raises(CatalogError):
            engine.register_table(schema_of("T", [("z", "int")]), [])

    def test_bulk_update_gc_keeps_recent_versions(self, engine):
        guids = [engine.catalog.current_guid("T")]
        for i in range(5):
            engine.bulk_update("T", [dict(a=i, b="x", c=0.0)],
                               keep_versions=2)
            guids.append(engine.catalog.current_guid("T"))
        # The most recent versions remain readable; ancient ones are gone.
        assert engine.store.has(guids[-1])
        assert engine.store.has(guids[-2])
        assert not engine.store.has(guids[0])

    def test_current_version_always_readable_after_gc(self, engine):
        for i in range(4):
            engine.bulk_update("T", [dict(a=i, b="b", c=1.0)],
                               keep_versions=1)
        run = engine.run_sql("SELECT a FROM T", reuse_enabled=False)
        assert run.rows == [{"a": 3}]

    def test_run_after_runtime_upgrade_still_correct(self, engine):
        before = engine.run_sql("SELECT a FROM T WHERE a > 0",
                                reuse_enabled=False)
        engine.set_runtime_version("scope-r9")
        after = engine.run_sql("SELECT a FROM T WHERE a > 0",
                               reuse_enabled=False)
        assert sorted(map(repr, before.rows)) == sorted(map(repr, after.rows))
