"""Unit tests for the monitoring surface (plan markers, deltas, events)."""

from repro.engine.monitoring import MonitoredJob, QueryMonitor, render_plan
from repro.obs import events as obs_events
from repro.obs.events import EventLog
from repro.plan.logical import Scan, Spool, ViewScan


def _job(job_id, submitted_at=0.0, cost=10.0, baseline=10.0, **overrides):
    fields = dict(
        job_id=job_id,
        virtual_cluster="vc0",
        sql="SELECT 1",
        submitted_at=submitted_at,
        views_built=0,
        views_reused=0,
        estimated_cost=cost,
        estimated_cost_without_reuse=baseline,
        plan_text="",
    )
    fields.update(overrides)
    return MonitoredJob(**fields)


class TestRenderPlan:
    def test_viewscan_marked_as_reused(self):
        plan = ViewScan(signature="a" * 64, view_path="/views/a",
                        columns=("k",))
        assert "<-- reused CloudView" in render_plan(plan)

    def test_spool_marked_as_materializing(self):
        plan = Spool(Scan("T", ("k",)), signature="b" * 64,
                     view_path="/views/b")
        text = render_plan(plan)
        lines = text.splitlines()
        assert "<-- materializes CloudView" in lines[0]
        assert lines[1].startswith("  Scan T")       # child indented
        assert "CloudView" not in lines[1]           # plain nodes unmarked


class TestCostDelta:
    def test_zero_baseline_is_zero_not_crash(self):
        assert _job("j", cost=5.0, baseline=0.0).cost_delta_percent == 0.0

    def test_reuse_is_negative_buildout_positive(self):
        assert _job("j", cost=5.0, baseline=10.0).cost_delta_percent == -50.0
        assert _job("j", cost=12.0, baseline=10.0).cost_delta_percent == 20.0


class TestJobOrdering:
    def test_ties_broken_by_arrival_order(self):
        monitor = QueryMonitor()
        for job_id in ("jz", "ja", "jm"):
            monitor._ingest_compiled(job_id, **{
                k: v for k, v in vars(_job(job_id, submitted_at=5.0)).items()
                if k != "job_id"})
        assert [j.job_id for j in monitor.jobs()] == ["jz", "ja", "jm"]

    def test_submitted_at_dominates(self):
        monitor = QueryMonitor()
        for job_id, at in (("late", 9.0), ("early", 1.0)):
            monitor._ingest_compiled(job_id, **{
                k: v for k, v in vars(_job(job_id, submitted_at=at)).items()
                if k != "job_id"})
        assert [j.job_id for j in monitor.jobs()] == ["early", "late"]


class TestEventDrivenMonitor:
    def test_ingests_job_compiled_events(self):
        log = EventLog()
        monitor = QueryMonitor(events=log)
        assert monitor.event_driven
        log.emit(obs_events.JOB_COMPILED, at=42.0, job_id="job-1",
                 virtual_cluster="vc1", sql="SELECT k FROM T",
                 views_built=1, views_reused=0,
                 estimated_cost=120.0, estimated_cost_without_reuse=100.0,
                 plan_text="Spool ...")
        entry = monitor.job("job-1")
        assert entry is not None
        assert entry.submitted_at == 42.0
        assert entry.virtual_cluster == "vc1"
        assert entry.views_built == 1
        assert entry.cost_delta_percent == 20.0

    def test_view_sealed_events_attach_to_sealing_job(self):
        log = EventLog()
        monitor = QueryMonitor(events=log)
        log.emit(obs_events.JOB_COMPILED, at=1.0, job_id="job-1",
                 virtual_cluster="vc0", sql="q", views_built=1,
                 views_reused=0, estimated_cost=1.0,
                 estimated_cost_without_reuse=1.0, plan_text="")
        log.emit(obs_events.VIEW_SEALED, at=2.0, job_id="job-1",
                 signature="sig-abc", rows=10)
        log.emit(obs_events.VIEW_SEALED, at=3.0, job_id="unknown-job",
                 signature="sig-def", rows=10)  # silently ignored
        assert monitor.job("job-1").sealed_views == ["sig-abc"]

    def test_plain_monitor_is_not_event_driven(self):
        assert not QueryMonitor().event_driven
