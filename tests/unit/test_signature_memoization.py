"""Enumeration-cost tests: subexpression enumeration must be O(n).

Before memoization, ``enumerate_subexpressions`` recomputed every child
hash at every ancestor, so a chain of n operators cost O(n^2) hash
invocations.  These tests pin the linear behavior by counting actual
``stable_hash`` calls.
"""

import pytest

import repro.signatures.signature as sig_module
from repro.plan.expressions import ColumnRef
from repro.plan.logical import Filter, Scan
from repro.signatures import (
    enumerate_subexpressions,
    recurring_signature,
    strict_signature,
)


def chain(depth):
    plan = Scan("Sales", ("A", "B"), stream_guid="guid-1")
    for index in range(depth):
        plan = Filter(plan, ColumnRef("A" if index % 2 else "B"))
    return plan


@pytest.fixture
def hash_counter(monkeypatch):
    calls = []
    real = sig_module.stable_hash

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(sig_module, "stable_hash", counting)
    return calls


def test_enumeration_hash_count_is_linear(hash_counter):
    plan = chain(40)
    nodes = sum(1 for _ in plan.walk())
    enumerate_subexpressions(plan, salt="v1")
    # One strict + one recurring digest per node, nothing recomputed.
    assert len(hash_counter) == 2 * nodes


def test_enumeration_matches_direct_signatures():
    plan = chain(6)
    subs = enumerate_subexpressions(plan, salt="v1")
    for sub in subs:
        assert sub.strict == strict_signature(sub.plan, "v1")
        assert sub.recurring == recurring_signature(sub.plan, "v1")


def test_enumeration_is_root_first():
    plan = chain(4)
    subs = enumerate_subexpressions(plan, salt="v1")
    assert subs[0].plan is plan
    assert subs[0].depth == 0
    assert subs[-1].height == 0  # a leaf comes last
    assert len(subs) == sum(1 for _ in plan.walk())


def test_memoized_signature_equals_unmemoized():
    plan = chain(8)
    memo = {}
    assert sig_module._signature(plan, False, "v1", memo) == \
        strict_signature(plan, "v1")
    # The memo now answers instantly for every subtree.
    assert memo[id(plan)] == strict_signature(plan, "v1")
