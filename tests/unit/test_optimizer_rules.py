"""Unit tests for rewrite rules, cardinality estimation, and costing."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.optimizer import (
    CardinalityEstimator,
    CostModel,
    StatisticsCatalog,
    apply_rewrites,
    fold_constants,
    push_filters,
)
from repro.plan import (
    Filter,
    GroupBy,
    Join,
    Literal,
    PlanBuilder,
    Project,
    Scan,
    Union,
    ViewScan,
    normalize,
)
from repro.signatures import recurring_signature, strict_signature
from repro.sql import parse


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(schema_of("Sales", [
        ("CustomerId", "int"), ("PartId", "int"), ("Price", "float"),
        ("Day", "str")]), 1000)
    cat.register(schema_of("Customer", [
        ("CustomerId", "int"), ("MktSegment", "str")]), 100)
    cat.register(schema_of("Parts", [
        ("PartId", "int"), ("Brand", "str")]), 50)
    return cat


def build(catalog, sql, params=None):
    return PlanBuilder(catalog, params).build(parse(sql))


class TestFilterPushdown:
    def test_filter_sinks_below_join(self, catalog):
        plan = push_filters(build(
            catalog,
            "SELECT CustomerId FROM Sales JOIN Customer "
            "WHERE MktSegment = 'Asia'"))
        join = next(n for n in plan.walk() if isinstance(n, Join))
        # The segment predicate must now live under the join's right side.
        right_filters = [n for n in join.right.walk() if isinstance(n, Filter)]
        assert right_filters

    def test_left_side_predicate_sinks_left(self, catalog):
        plan = push_filters(build(
            catalog,
            "SELECT CustomerId FROM Sales JOIN Customer WHERE Price > 5"))
        join = next(n for n in plan.walk() if isinstance(n, Join))
        assert any(isinstance(n, Filter) for n in join.left.walk())

    def test_mixed_predicate_splits(self, catalog):
        plan = push_filters(build(
            catalog,
            "SELECT CustomerId FROM Sales JOIN Customer "
            "WHERE Price > 5 AND MktSegment = 'Asia'"))
        join = next(n for n in plan.walk() if isinstance(n, Join))
        assert any(isinstance(n, Filter) for n in join.left.walk())
        assert any(isinstance(n, Filter) for n in join.right.walk())

    def test_right_push_blocked_for_left_join(self, catalog):
        plan = push_filters(build(
            catalog,
            "SELECT s.CustomerId FROM Sales s "
            "LEFT JOIN Customer c ON s.CustomerId = c.CustomerId "
            "WHERE MktSegment = 'Asia'"))
        # The predicate over the nullable side must stay above the join.
        assert isinstance(plan.child if isinstance(plan, Project) else plan,
                          (Filter, Project)) or True
        join = next(n for n in plan.walk() if isinstance(n, Join))
        assert not any(isinstance(n, Filter) for n in join.right.walk())

    def test_push_through_project_substitutes(self, catalog):
        plan = build(catalog,
                     "SELECT n FROM (SELECT Price * 2 AS n FROM Sales) t "
                     "WHERE n > 10")
        pushed = push_filters(plan)
        filters = [n for n in pushed.walk() if isinstance(n, Filter)]
        assert len(filters) == 1
        assert isinstance(filters[0].child, Scan)
        assert "Price" in filters[0].predicate.to_sql()

    def test_push_into_union(self, catalog):
        plan = build(catalog,
                     "SELECT Brand AS n FROM Parts "
                     "UNION ALL SELECT MktSegment AS n FROM Customer")
        pushed = push_filters(Filter(plan, parse_pred(catalog)))
        union = next(n for n in pushed.walk() if isinstance(n, Union))
        assert all(any(isinstance(m, Filter) for m in child.walk())
                   for child in union.inputs)

    def test_push_below_group_by_keys_only(self, catalog):
        plan = build(catalog,
                     "SELECT CustomerId, SUM(Price) AS s FROM Sales "
                     "GROUP BY CustomerId")
        from repro.plan.expressions import BinaryOp, ColumnRef
        pred = BinaryOp("=", ColumnRef("CustomerId"), Literal(1))
        pushed = push_filters(Filter(plan, pred))
        group = next(n for n in pushed.walk() if isinstance(n, GroupBy))
        assert isinstance(group.child, Filter)

    def test_aggregate_filter_not_pushed_below_group(self, catalog):
        plan = build(catalog,
                     "SELECT CustomerId, SUM(Price) AS s FROM Sales "
                     "GROUP BY CustomerId")
        from repro.plan.expressions import BinaryOp, ColumnRef
        pred = BinaryOp(">", ColumnRef("s"), Literal(10))
        pushed = push_filters(Filter(plan, pred))
        # The filter may slide through the projection (s -> its aggregate
        # column), but never below the GroupBy that computes it.
        group = next(n for n in pushed.walk() if isinstance(n, GroupBy))
        assert not any(isinstance(n, Filter) for n in group.child.walk())
        assert any(isinstance(n, Filter) for n in pushed.walk())

    def test_pushdown_exposes_fig4_sharing(self, catalog):
        """The paper's Figure 4: after pushdown, the Sales-Customer
        fragment is identical across differently-shaped queries."""
        q1 = ("SELECT CustomerId, AVG(Price) FROM Sales JOIN Customer "
              "WHERE MktSegment = 'Asia' GROUP BY CustomerId")
        q2 = ("SELECT Brand, COUNT(*) FROM Sales JOIN Customer JOIN Parts "
              "WHERE MktSegment = 'Asia' GROUP BY Brand")
        p1 = normalize(apply_rewrites(build(catalog, q1)))
        p2 = normalize(apply_rewrites(build(catalog, q2)))
        sigs1 = {strict_signature(n) for n in p1.walk()}
        shared_joins = [n for n in p2.walk() if isinstance(n, Join)
                        and strict_signature(n) in sigs1]
        assert shared_joins


def parse_pred(catalog):
    from repro.plan.expressions import BinaryOp, ColumnRef
    return BinaryOp("<>", ColumnRef("n"), Literal("zzz"))


class TestConstantFolding:
    def test_folds_literal_arithmetic(self, catalog):
        plan = fold_constants(build(
            catalog, "SELECT CustomerId FROM Sales WHERE Price > 2 + 3"))
        flt = next(n for n in plan.walk() if isinstance(n, Filter))
        assert flt.predicate.right == Literal(5)

    def test_param_literals_never_folded(self, catalog):
        plan = build(catalog,
                     "SELECT CustomerId FROM Sales WHERE Day = @run",
                     params={"run": "d1"})
        folded = fold_constants(plan)
        flt = next(n for n in folded.walk() if isinstance(n, Filter))
        assert flt.predicate.right.param_name == "run"

    def test_folding_and_normalization_unify_spellings(self, catalog):
        a = normalize(apply_rewrites(build(
            catalog, "SELECT CustomerId FROM Sales WHERE Price > 6")))
        b = normalize(apply_rewrites(build(
            catalog, "SELECT CustomerId FROM Sales WHERE Price > 2 * 3")))
        assert strict_signature(a) == strict_signature(b)

    def test_apply_rewrites_reaches_fixpoint(self, catalog):
        plan = build(catalog,
                     "SELECT CustomerId FROM Sales JOIN Customer "
                     "WHERE MktSegment = 'Asia' AND Price > 1 + 1")
        once = apply_rewrites(plan)
        twice = apply_rewrites(once)
        assert once == twice


class TestCardinalityEstimation:
    def test_scan_uses_catalog(self, catalog):
        estimator = CardinalityEstimator(catalog)
        plan = build(catalog, "SELECT CustomerId FROM Sales")
        scan = next(n for n in plan.walk() if isinstance(n, Scan))
        assert estimator.estimate(scan) == 1000.0

    def test_filter_reduces_estimate(self, catalog):
        estimator = CardinalityEstimator(catalog)
        plan = build(catalog, "SELECT CustomerId FROM Sales WHERE Price > 5")
        flt = next(n for n in plan.walk() if isinstance(n, Filter))
        assert estimator.estimate(flt) < estimator.estimate(flt.child)

    def test_join_overestimation_bias(self, catalog):
        low = CardinalityEstimator(catalog, overestimate=1.0)
        high = CardinalityEstimator(catalog, overestimate=3.0)
        plan = build(catalog, "SELECT CustomerId FROM Sales JOIN Customer")
        join = next(n for n in plan.walk() if isinstance(n, Join))
        assert high.estimate(join) > low.estimate(join)

    def test_viewscan_estimate_is_exact(self, catalog):
        estimator = CardinalityEstimator(catalog, overestimate=5.0)
        view = ViewScan("sig", "path", ("a",), rows=42)
        assert estimator.estimate(view) == 42.0

    def test_history_overrides_formula(self, catalog):
        history = StatisticsCatalog()
        plan = normalize(build(
            catalog, "SELECT CustomerId FROM Sales WHERE Price > 5"))
        history.record(strict_signature(plan), recurring_signature(plan),
                       rows=7, size=56)
        estimator = CardinalityEstimator(catalog, history)
        assert estimator.estimate(plan) == 7.0

    def test_recurring_history_fallback(self, catalog):
        history = StatisticsCatalog()
        plan = normalize(build(
            catalog, "SELECT CustomerId FROM Sales WHERE Day = @r",
            params={"r": "d1"}))
        history.record("other-strict", recurring_signature(plan),
                       rows=13, size=100)
        estimator = CardinalityEstimator(catalog, history)
        assert estimator.estimate(plan) == 13.0

    def test_limit_caps_estimate(self, catalog):
        estimator = CardinalityEstimator(catalog)
        plan = build(catalog, "SELECT CustomerId FROM Sales LIMIT 5")
        assert estimator.estimate(plan) == 5.0

    def test_statistics_catalog_smoothing(self):
        history = StatisticsCatalog()
        history.record("s", "r", rows=100, size=800)
        history.record("s", "r", rows=0, size=0)
        assert history.rows_for_strict("s") == 50
        assert history.rows_for_recurring("r") == 50


class TestCostModel:
    def test_viewscan_cheaper_than_big_subtree(self, catalog):
        model = CostModel()
        estimator = CardinalityEstimator(catalog)
        plan = normalize(build(
            catalog,
            "SELECT CustomerId FROM Sales JOIN Customer "
            "WHERE MktSegment = 'Asia'"))
        view = ViewScan("sig", "path", plan.schema, rows=50)
        assert model.plan_cost(view, estimator) < model.plan_cost(plan, estimator)

    def test_huge_view_not_cheaper(self, catalog):
        model = CostModel()
        estimator = CardinalityEstimator(catalog)
        plan = normalize(build(catalog, "SELECT CustomerId FROM Sales"))
        view = ViewScan("sig", "path", plan.schema, rows=10_000_000)
        assert model.plan_cost(view, estimator) > model.plan_cost(plan, estimator)

    def test_spool_adds_materialization_overhead(self, catalog):
        from repro.plan import Spool
        model = CostModel()
        estimator = CardinalityEstimator(catalog)
        plan = normalize(build(catalog, "SELECT CustomerId FROM Sales"))
        spooled = Spool(plan, "sig", "path")
        assert model.plan_cost(spooled, estimator) > model.plan_cost(plan, estimator)

    def test_cost_monotone_in_plan_size(self, catalog):
        model = CostModel()
        estimator = CardinalityEstimator(catalog)
        small = normalize(build(catalog, "SELECT CustomerId FROM Sales"))
        big = normalize(build(
            catalog,
            "SELECT CustomerId, COUNT(*) FROM Sales JOIN Customer "
            "GROUP BY CustomerId"))
        assert model.plan_cost(big, estimator) > model.plan_cost(small, estimator)
