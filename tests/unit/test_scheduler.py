"""Unit tests for the concurrent job scheduler and the repro.api facade."""

import pytest

from repro.api import Session
from repro.catalog import schema_of
from repro.common.errors import (
    AdmissionError,
    ConfigError,
    SchedulerError,
)
from repro.engine import ScopeEngine
from repro.optimizer.context import Annotation
from repro.plan import PlanBuilder, normalize
from repro.plan.logical import Join
from repro.scheduler import (
    JobRequest,
    JobScheduler,
    SchedulerConfig,
)
from repro.signatures import enumerate_subexpressions
from repro.sql import parse

SQL = ("SELECT CustomerId, SUM(Price) AS s FROM Sales JOIN Customer "
       "WHERE MktSegment = 'Asia' GROUP BY CustomerId")


def install_tables(engine):
    engine.register_table(
        schema_of("Sales", [("CustomerId", "int"), ("Price", "float"),
                            ("Day", "str")]),
        [dict(CustomerId=i % 5, Price=float(i), Day="d0")
         for i in range(50)])
    engine.register_table(
        schema_of("Customer", [("CustomerId", "int"), ("MktSegment", "str")]),
        [dict(CustomerId=i, MktSegment="Asia" if i % 2 else "Europe")
         for i in range(5)])


def annotate_join(engine, sql=SQL):
    from repro.optimizer.rules import apply_rewrites
    plan = normalize(apply_rewrites(
        PlanBuilder(engine.catalog).build(parse(sql))))
    subs = enumerate_subexpressions(plan, engine.signature_salt)
    join = max((s for s in subs if isinstance(s.plan, Join)),
               key=lambda s: s.height)
    engine.insights.publish([Annotation(join.recurring, join.tag)])


@pytest.fixture
def engine():
    eng = ScopeEngine()
    install_tables(eng)
    return eng


class TestSchedulerConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(workers=0),
        dict(max_pending=-1),
        dict(admission="drop"),
    ])
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ConfigError):
            SchedulerConfig(**kwargs)


class TestBatches:
    def test_results_in_submission_order_with_deterministic_ids(self, engine):
        with JobScheduler(engine, SchedulerConfig(workers=4)) as scheduler:
            results = scheduler.run_batch(
                [JobRequest(sql=SQL) for _ in range(8)], now=0.0)
        assert [r.job_id for r in results] == \
            [f"job-{i}" for i in range(1, 9)]
        assert all(r.ok for r in results)
        rows = [sorted(map(repr, r.rows)) for r in results]
        assert all(r == rows[0] for r in rows)

    def test_per_job_isolation(self, engine):
        requests = [JobRequest(sql=SQL),
                    JobRequest(sql="SELECT Nope FROM Missing"),
                    JobRequest(sql=SQL)]
        with JobScheduler(engine, SchedulerConfig(workers=3)) as scheduler:
            results = scheduler.run_batch(requests, now=0.0)
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error
        assert results[1].error_type
        assert results[1].rows == []

    def test_one_buildout_per_wave_via_lock_table(self, engine):
        annotate_join(engine)
        with JobScheduler(engine, SchedulerConfig(workers=4)) as scheduler:
            results = scheduler.run_batch(
                [JobRequest(sql=SQL) for _ in range(4)], now=0.0)
        # Exactly one of the concurrent jobs won the view lock and built;
        # views seal at the barrier, so none reused within the wave.
        assert sum(r.views_built for r in results) == 1
        assert engine.view_store.total_created == 1
        # The lock was released by early sealing.
        assert engine.insights.held_locks() == {}

    def test_next_wave_reuses_previous_waves_views(self, engine):
        annotate_join(engine)
        with JobScheduler(engine, SchedulerConfig(workers=4)) as scheduler:
            scheduler.run_batch([JobRequest(sql=SQL)], now=0.0)
            results = scheduler.run_batch(
                [JobRequest(sql=SQL) for _ in range(3)], now=10.0)
        assert all(r.views_reused == 1 for r in results)

    def test_reuse_gate_disables_per_virtual_cluster(self, engine):
        annotate_join(engine)
        scheduler = JobScheduler(
            engine, SchedulerConfig(workers=2),
            reuse_gate=lambda vc: vc != "frozen")
        results = scheduler.run_batch(
            [JobRequest(sql=SQL, virtual_cluster="frozen"),
             JobRequest(sql=SQL, virtual_cluster="hot")], now=0.0)
        scheduler.close()
        assert results[0].reuse_enabled is False
        assert results[0].views_built == 0
        assert results[1].views_built == 1


class TestAdmission:
    def test_reject_mode_raises_admission_error(self, engine):
        scheduler = JobScheduler(engine, SchedulerConfig(
            workers=1, max_pending=2, admission="reject"))
        scheduler.submit(JobRequest(sql=SQL))
        scheduler.submit(JobRequest(sql=SQL))
        with pytest.raises(AdmissionError):
            scheduler.submit(JobRequest(sql=SQL))
        scheduler.drain()
        # Draining frees the slots again.
        scheduler.submit(JobRequest(sql=SQL))
        scheduler.drain()
        scheduler.close()

    def test_failed_jobs_release_admission_slots(self, engine):
        scheduler = JobScheduler(engine, SchedulerConfig(
            workers=1, max_pending=1, admission="reject"))
        scheduler.submit(JobRequest(sql="SELECT Nope FROM Missing"))
        results = scheduler.drain()
        assert not results[0].ok
        scheduler.submit(JobRequest(sql=SQL))
        assert scheduler.drain()[0].ok
        scheduler.close()


class TestLifecycle:
    def test_close_with_pending_jobs_refuses(self, engine):
        scheduler = JobScheduler(engine, SchedulerConfig(workers=1))
        scheduler.submit(JobRequest(sql=SQL))
        with pytest.raises(SchedulerError):
            scheduler.close()
        scheduler.drain()
        scheduler.close()

    def test_submit_after_close_refuses(self, engine):
        scheduler = JobScheduler(engine, SchedulerConfig(workers=1))
        scheduler.close()
        with pytest.raises(SchedulerError):
            scheduler.submit(JobRequest(sql=SQL))


class TestSessionFacade:
    def test_run_and_run_batch_share_job_result_shape(self):
        with Session() as session:
            install_tables(session.engine)
            single = session.run(SQL, now=0.0)
            batch = session.run_batch([SQL, SQL], now=1.0)
        assert single.ok and all(r.ok for r in batch)
        assert single.summary().keys() == batch[0].summary().keys()
        assert [r.job_id for r in batch] == ["job-2", "job-3"]

    def test_batch_failures_do_not_raise(self):
        with Session() as session:
            install_tables(session.engine)
            results = session.run_batch(
                [SQL, "SELECT Nope FROM Missing"], now=0.0)
        assert [r.ok for r in results] == [True, False]

    def test_feedback_loop_through_session(self):
        from repro.core.controls import MultiLevelControls
        from repro.selection.policies import SelectionPolicy

        controls = MultiLevelControls()
        controls.enable_vc("default")
        with Session(controls=controls,
                     policy=SelectionPolicy(min_reuses_per_epoch=0.0)
                     ) as session:
            install_tables(session.engine)
            session.run(SQL, now=0.0)
            session.run(SQL, now=1.0)
            selection = session.analyze_and_publish()
            assert selection.considered > 0
            later = session.run(SQL, now=10.0)
            reuse_round = session.run(SQL, now=20.0)
        assert later.views_built >= 1
        assert reuse_round.views_reused >= 1
        assert session.views_created >= 1

    def test_unknown_selection_algorithm_raises(self):
        with pytest.raises(ConfigError):
            Session(selection_algorithm="magic")

    def test_catalog_digest_stable_across_equivalent_sessions(self):
        from repro.core.controls import MultiLevelControls
        from repro.selection.policies import SelectionPolicy

        def build():
            controls = MultiLevelControls()
            controls.enable_vc("default")
            with Session(controls=controls,
                         policy=SelectionPolicy(min_reuses_per_epoch=0.0)
                         ) as session:
                install_tables(session.engine)
                session.run(SQL, now=0.0)
                session.run(SQL, now=1.0)
                session.analyze_and_publish()
                session.run(SQL, now=10.0)
                digest = session.catalog_digest()
                assert session.views_created >= 1
                return digest
        assert build() == build()


class TestSessionShutdown:
    def test_close_stops_janitor_and_flushes_journal(self, tmp_path):
        """Session.close() must leave nothing behind: the GC janitor
        thread is joined and the catalog journal is snapshotted with its
        WAL truncated and closed."""
        import os

        from repro.api import LifecycleConfig
        from repro.core.controls import MultiLevelControls
        from repro.selection.policies import SelectionPolicy

        journal_dir = str(tmp_path / "journal")
        controls = MultiLevelControls()
        controls.enable_vc("default")
        session = Session(
            controls=controls,
            policy=SelectionPolicy(min_reuses_per_epoch=0.0),
            lifecycle=LifecycleConfig(journal_dir=journal_dir,
                                      start_janitor=True,
                                      gc_interval_seconds=0.01,
                                      # Pin the janitor to simulated time:
                                      # with the wall-clock default, an
                                      # autonomous sweep firing between
                                      # the last run (now=10.0) and
                                      # close() sees the views as long
                                      # expired and empties the snapshot.
                                      clock=lambda: 10.0))
        install_tables(session.engine)
        session.run(SQL, now=0.0)
        session.run(SQL, now=1.0)
        session.analyze_and_publish()
        session.run(SQL, now=10.0)
        assert session.views_created >= 1
        assert session.lifecycle.janitor.running

        session.close()

        assert not session.lifecycle.janitor.running
        journal = session.lifecycle.journal
        assert journal._wal is None  # WAL handle closed
        # The shutdown snapshot captured every view; the WAL is empty.
        assert os.path.getsize(journal.wal_path) == 0
        with open(journal.snapshot_path, encoding="utf-8") as handle:
            import json
            payload = json.load(handle)
        assert len(payload["views"]) >= 1

    def test_close_is_reentrant_with_lifecycle(self, tmp_path):
        from repro.api import LifecycleConfig

        session = Session(lifecycle=LifecycleConfig(
            journal_dir=str(tmp_path / "journal"), start_janitor=True,
            gc_interval_seconds=0.01))
        install_tables(session.engine)
        session.run(SQL, now=0.0)
        session.close()
        session.close()  # second close must not raise or restart anything
        assert not session.lifecycle.janitor.running
