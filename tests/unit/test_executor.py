"""Unit tests for the row-level executor."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.common.errors import ExecutionError
from repro.executor import Executor, UdoRegistry
from repro.executor.executor import LOOP_JOIN_THRESHOLD, choose_join_algorithm
from repro.plan import PlanBuilder, Spool, normalize
from repro.plan.logical import Join, Scan
from repro.sql import parse
from repro.storage import DataStore


@pytest.fixture
def setup():
    catalog = Catalog()
    store = DataStore()

    def register(schema, rows):
        version = catalog.register(schema, len(rows))
        store.put(version.guid, rows)

    register(schema_of("Sales", [
        ("CustomerId", "int"), ("PartId", "int"), ("Price", "float"),
        ("Quantity", "int")]), [
        dict(CustomerId=1, PartId=1, Price=10.0, Quantity=2),
        dict(CustomerId=1, PartId=2, Price=20.0, Quantity=1),
        dict(CustomerId=2, PartId=1, Price=5.0, Quantity=4),
        dict(CustomerId=3, PartId=3, Price=7.5, Quantity=2),
    ])
    register(schema_of("Customer", [
        ("CustomerId", "int"), ("MktSegment", "str")]), [
        dict(CustomerId=1, MktSegment="Asia"),
        dict(CustomerId=2, MktSegment="Europe"),
        dict(CustomerId=3, MktSegment="Asia"),
    ])
    register(schema_of("Parts", [
        ("PartId", "int"), ("Brand", "str")]), [
        dict(PartId=1, Brand="b1"),
        dict(PartId=2, Brand="b2"),
        dict(PartId=3, Brand="b1"),
    ])
    executor = Executor(store)
    builder = PlanBuilder(catalog)
    return catalog, store, executor, builder


def run(setup, sql, params=None):
    catalog, store, executor, builder = setup
    builder.params = dict(params or {})
    plan = normalize(builder.build(parse(sql)))
    return executor.execute(plan)


def rows_set(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


class TestBasicOperators:
    def test_scan_projects_catalog_columns(self, setup):
        result = run(setup, "SELECT * FROM Parts")
        assert len(result.rows) == 3
        assert set(result.rows[0]) == {"PartId", "Brand"}

    def test_filter(self, setup):
        result = run(setup, "SELECT CustomerId FROM Sales WHERE Price > 9")
        assert sorted(r["CustomerId"] for r in result.rows) == [1, 1]

    def test_projection_expression(self, setup):
        result = run(setup,
                     "SELECT Price * Quantity AS total FROM Sales "
                     "WHERE CustomerId = 1")
        assert sorted(r["total"] for r in result.rows) == [20.0, 20.0]

    def test_distinct(self, setup):
        result = run(setup, "SELECT DISTINCT Brand FROM Parts")
        assert sorted(r["Brand"] for r in result.rows) == ["b1", "b2"]

    def test_order_by_desc_limit(self, setup):
        result = run(setup,
                     "SELECT Price FROM Sales ORDER BY Price DESC LIMIT 2")
        assert [r["Price"] for r in result.rows] == [20.0, 10.0]

    def test_union_all(self, setup):
        result = run(setup,
                     "SELECT Brand AS n FROM Parts "
                     "UNION ALL SELECT MktSegment AS n FROM Customer")
        assert len(result.rows) == 6

    def test_union_distinct(self, setup):
        result = run(setup,
                     "SELECT Brand AS n FROM Parts "
                     "UNION SELECT Brand AS n FROM Parts")
        assert len(result.rows) == 2


class TestJoins:
    def test_natural_join(self, setup):
        result = run(setup, "SELECT MktSegment FROM Sales JOIN Customer")
        assert len(result.rows) == 4

    def test_join_filter_combination(self, setup):
        result = run(setup,
                     "SELECT CustomerId FROM Sales JOIN Customer "
                     "WHERE MktSegment = 'Asia'")
        assert sorted(r["CustomerId"] for r in result.rows) == [1, 1, 3]

    def test_three_way_join(self, setup):
        result = run(setup,
                     "SELECT Brand FROM Sales JOIN Customer JOIN Parts "
                     "WHERE MktSegment = 'Asia'")
        assert sorted(r["Brand"] for r in result.rows) == ["b1", "b1", "b2"]

    def test_left_join_preserves_unmatched(self, setup):
        catalog, store, executor, builder = setup
        version = catalog.register(
            schema_of("Extra", [("CustomerId", "int"), ("Flag", "str")]),
            1)
        store.put(version.guid, [dict(CustomerId=1, Flag="x")])
        result = run(setup,
                     "SELECT c.CustomerId, Flag FROM Customer c "
                     "LEFT JOIN Extra e ON c.CustomerId = e.CustomerId")
        by_customer = {r["CustomerId"]: r["Flag"] for r in result.rows}
        assert by_customer == {1: "x", 2: None, 3: None}

    def test_cross_join(self, setup):
        catalog, store, executor, builder = setup
        version = catalog.register(schema_of("Two", [("x", "int")]), 2)
        store.put(version.guid, [dict(x=1), dict(x=2)])
        result = run(setup, "SELECT Brand, x FROM Parts JOIN Two")
        assert len(result.rows) == 6

    def test_join_residual_predicate(self, setup):
        result = run(setup,
                     "SELECT s.CustomerId FROM Sales s JOIN Customer c "
                     "ON s.CustomerId = c.CustomerId "
                     "AND c.MktSegment = 'Europe'")
        assert [r["CustomerId"] for r in result.rows] == [2]

    def test_join_algorithm_selection(self, setup):
        catalog, _, _, builder = setup
        plan = normalize(builder.build(parse(
            "SELECT MktSegment FROM Sales JOIN Customer")))
        join = next(n for n in plan.walk() if isinstance(n, Join))
        big = LOOP_JOIN_THRESHOLD * 5
        assert choose_join_algorithm(join, big, big) == "hash"
        assert choose_join_algorithm(join, big, 2) == "loop"
        cross = Join(join.left, join.right)
        assert choose_join_algorithm(cross, big, big) == "loop"
        multi = Join(join.left, join.right,
                     join.left_keys * 2, join.right_keys * 2)
        assert choose_join_algorithm(multi, big, big) == "merge"

    def test_merge_join_matches_hash_join(self, setup):
        catalog, store, executor, builder = setup
        plan = normalize(builder.build(parse(
            "SELECT MktSegment FROM Sales JOIN Customer")))
        join = next(n for n in plan.walk() if isinstance(n, Join))
        from repro.executor.executor import _hash_join, _merge_join
        left = store.get(catalog.current_guid("Sales"))
        right_plan_rows = executor.execute(join.right).rows
        assert rows_set(_merge_join(join, left, right_plan_rows)) == \
            rows_set(_hash_join(join, left, right_plan_rows))


class TestAggregates:
    def test_group_by_avg(self, setup):
        result = run(setup,
                     "SELECT CustomerId, AVG(Price) AS a FROM Sales "
                     "GROUP BY CustomerId")
        by_customer = {r["CustomerId"]: r["a"] for r in result.rows}
        assert by_customer[1] == 15.0
        assert by_customer[2] == 5.0

    def test_global_aggregates(self, setup):
        result = run(setup,
                     "SELECT SUM(Quantity) AS q, COUNT(*) AS c, "
                     "MIN(Price) AS mn, MAX(Price) AS mx FROM Sales")
        row = result.rows[0]
        assert row == {"q": 9, "c": 4, "mn": 5.0, "mx": 20.0}

    def test_count_distinct(self, setup):
        result = run(setup,
                     "SELECT COUNT(DISTINCT CustomerId) AS c FROM Sales")
        assert result.rows[0]["c"] == 3

    def test_having(self, setup):
        result = run(setup,
                     "SELECT CustomerId FROM Sales GROUP BY CustomerId "
                     "HAVING SUM(Quantity) > 2")
        assert sorted(r["CustomerId"] for r in result.rows) == [1, 2]

    def test_global_aggregate_on_empty_input(self, setup):
        result = run(setup,
                     "SELECT COUNT(*) AS c, SUM(Price) AS s FROM Sales "
                     "WHERE Price > 1000")
        assert result.rows == [{"c": 0, "s": None}]

    def test_group_by_on_empty_input_yields_no_groups(self, setup):
        result = run(setup,
                     "SELECT CustomerId FROM Sales WHERE Price > 1000 "
                     "GROUP BY CustomerId")
        assert result.rows == []

    def test_arithmetic_over_aggregates(self, setup):
        result = run(setup,
                     "SELECT SUM(Price) / COUNT(*) AS avg_price FROM Sales")
        assert result.rows[0]["avg_price"] == pytest.approx(10.625)


class TestUdos:
    def test_registered_udo_applies(self, setup):
        catalog, store, _, builder = setup
        udos = UdoRegistry()
        udos.register("Double", lambda rows: rows + rows)
        executor = Executor(store, udos)
        plan = normalize(builder.build(parse(
            "SELECT Brand FROM Parts PROCESS USING Double")))
        assert len(executor.execute(plan).rows) == 6

    def test_unknown_udo_passthrough(self, setup):
        result = run(setup, "SELECT Brand FROM Parts PROCESS USING Unknown")
        assert len(result.rows) == 3


class TestSpoolAndStats:
    def test_spool_writes_and_passes_through(self, setup):
        catalog, store, executor, builder = setup
        plan = normalize(builder.build(parse(
            "SELECT CustomerId FROM Sales WHERE Price > 9")))
        spooled = Spool(plan, signature="sig1", view_path="views/sig1")
        result = executor.execute(spooled)
        assert len(result.rows) == 2
        assert store.get("views/sig1") == result.rows
        assert len(result.spooled) == 1
        assert result.spooled[0].row_count == 2

    def test_node_stats_cover_every_operator(self, setup):
        catalog, store, executor, builder = setup
        plan = normalize(builder.build(parse(
            "SELECT CustomerId, SUM(Price) FROM Sales JOIN Customer "
            "WHERE MktSegment = 'Asia' GROUP BY CustomerId")))
        result = executor.execute(plan)
        recorded = {id(node) for node, _ in result.node_stats}
        assert all(id(node) in recorded for node in plan.walk())

    def test_input_accounting(self, setup):
        result = run(setup, "SELECT MktSegment FROM Sales JOIN Customer")
        assert result.input_rows == 7  # 4 sales + 3 customers
        assert result.input_bytes > 0
        assert result.data_read_bytes >= result.input_bytes

    def test_unbound_scan_raises(self, setup):
        catalog, store, executor, _ = setup
        with pytest.raises(ExecutionError):
            executor.execute(Scan("Sales", ("CustomerId",), None))

    def test_rows_out_of_unknown_node_raises(self, setup):
        result = run(setup, "SELECT Brand FROM Parts")
        with pytest.raises(ExecutionError):
            result.rows_out_of(Scan("Sales", ("CustomerId",), "guid"))
