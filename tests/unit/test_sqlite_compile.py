"""Plan -> SQL compiler units: every physical operator, NULL and type
edges, checked against the in-memory interpreter on the same data.

The SQLite backend is only correct if its SQL lowering reproduces the
interpreter's Python semantics *including* the awkward corners: three-
valued comparisons collapsed to False, Python truthiness in predicates,
``None == None`` hash-join keys, type-affinity-free storage, and the
shared byte-accounting rule.  Each test here runs one operator shape on
both engines and requires identical canonical rows; the stats tests
additionally require identical per-operator (rows_in, rows_out,
bytes_out) triples, since selection decisions hang off those numbers.
"""

import pytest

from repro.backends.differential import canonical_rows
from repro.backends.memory import InMemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.catalog import Catalog, schema_of
from repro.common.errors import ExecutionError
from repro.plan import PlanBuilder, normalize
from repro.sql import parse


@pytest.fixture
def rig():
    """Same catalog + data loaded into both backends."""
    catalog = Catalog()
    memory = InMemoryBackend()
    sqlite = SqliteBackend()

    def register(schema, rows):
        version = catalog.register(schema, len(rows))
        memory.load_table(schema, version.guid, rows)
        sqlite.load_table(schema, version.guid, rows)

    register(schema_of("T", [
        ("k", "int"), ("v", "float"), ("s", "str"), ("b", "bool"),
        ("d", "date")]), [
        dict(k=1, v=10.5, s="alpha", b=True, d="2021-03-14"),
        dict(k=2, v=-0.0, s="", b=False, d="2021-03-15"),
        dict(k=None, v=None, s=None, b=None, d=None),
        dict(k=3, v=2.5, s="Beta", b=True, d="2022-01-02"),
        dict(k=1, v=7.25, s="gamma", b=False, d="2021-03-14"),
    ])
    register(schema_of("D", [("k", "int"), ("name", "str")]), [
        dict(k=1, name="one"),
        dict(k=2, name="two"),
        dict(k=None, name="none"),
    ])
    builder = PlanBuilder(catalog)
    yield catalog, memory, sqlite, builder
    sqlite.close()
    memory.close()


def both(rig, sql, params=None):
    catalog, memory, sqlite, builder = rig
    builder.params = dict(params or {})
    plan = normalize(builder.build(parse(sql)))
    return memory.execute(plan), sqlite.execute(plan)


def assert_rows_match(rig, sql, params=None):
    mem, sql_res = both(rig, sql, params)
    assert canonical_rows(mem.rows) == canonical_rows(sql_res.rows), sql
    return mem, sql_res


def assert_stats_match(mem, sql_res):
    mem_stats = [(s.operator, s.rows_in, s.rows_out, s.bytes_out)
                 for _, s in mem.node_stats]
    sql_stats = [(s.operator, s.rows_in, s.rows_out, s.bytes_out)
                 for _, s in sql_res.node_stats]
    assert mem_stats == sql_stats


# --------------------------------------------------------------------- #
# one test per physical operator


class TestOperators:
    def test_scan_and_project(self, rig):
        mem, sq = assert_rows_match(rig, "SELECT k, s FROM T")
        assert_stats_match(mem, sq)

    def test_filter_numeric_comparison_drops_nulls(self, rig):
        # Interpreter: None > 1 is False; SQL: NULL > 1 is NULL.  The
        # COALESCE wrapper must collapse both to "row excluded".
        mem, sq = assert_rows_match(rig, "SELECT k FROM T WHERE k > 1")
        assert len(mem.rows) == 2
        assert_stats_match(mem, sq)

    def test_join_null_keys_match_like_python(self, rig):
        # Python hash join: None == None, so the NULL rows pair up; the
        # lowering uses IS, not =, for equi-join keys.
        mem, sq = assert_rows_match(
            rig, "SELECT T.k, name FROM T JOIN D ON T.k = D.k")
        assert any(r["name"] == "none" for r in mem.rows)
        assert_stats_match(mem, sq)

    def test_left_join(self, rig):
        mem, sq = assert_rows_match(
            rig, "SELECT s, name FROM T LEFT JOIN D ON T.k = D.k")
        assert len(mem.rows) == 5
        assert_stats_match(mem, sq)

    def test_group_by_null_key_groups(self, rig):
        mem, sq = assert_rows_match(
            rig, "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM T GROUP BY k")
        assert_stats_match(mem, sq)

    def test_global_aggregate_without_group_by(self, rig):
        mem, sq = assert_rows_match(
            rig, "SELECT COUNT(*) AS n, AVG(v) AS a, MIN(s) AS lo, "
                 "MAX(k) AS hi FROM T")
        assert len(mem.rows) == 1
        assert_stats_match(mem, sq)

    def test_count_distinct(self, rig):
        assert_rows_match(rig, "SELECT COUNT(DISTINCT k) AS n FROM T")

    def test_distinct(self, rig):
        mem, sq = assert_rows_match(rig, "SELECT DISTINCT k FROM T")
        assert_stats_match(mem, sq)

    def test_union_all(self, rig):
        mem, sq = assert_rows_match(
            rig, "SELECT k FROM T UNION ALL SELECT k FROM D")
        assert len(mem.rows) == 8
        assert_stats_match(mem, sq)

    def test_sort_nulls_order_like_interpreter(self, rig):
        # The interpreter's sort key puts None first ascending; SQLite
        # also sorts NULL first ascending -- the lowering relies on this
        # agreement, so pin it with an ordered (not multiset) compare.
        _, sq = both(rig, "SELECT k FROM T ORDER BY k")
        assert [r["k"] for r in sq.rows] == [None, 1, 1, 2, 3]
        _, sq = both(rig, "SELECT k FROM T ORDER BY k DESC")
        assert [r["k"] for r in sq.rows] == [3, 2, 1, 1, None]

    def test_limit_over_sort_is_deterministic(self, rig):
        _, sq = both(rig, "SELECT k FROM T ORDER BY k LIMIT 2")
        assert [r["k"] for r in sq.rows] == [None, 1]

    def test_process_is_rejected(self, rig):
        catalog, memory, sqlite, builder = rig
        builder.params = {}
        plan = normalize(builder.build(parse(
            "SELECT k FROM T PROCESS USING nosuchudo")))
        with pytest.raises(ExecutionError):
            sqlite.execute(plan)


# --------------------------------------------------------------------- #
# expression edges


class TestExpressions:
    def test_truthiness_of_bare_string_column(self, rig):
        # WHERE s: Python keeps non-empty strings; '' and None drop.
        mem, _ = assert_rows_match(rig, "SELECT s FROM T WHERE s")
        assert sorted(r["s"] for r in mem.rows) == ["Beta", "alpha",
                                                    "gamma"]

    def test_truthiness_of_bool_and_not(self, rig):
        assert_rows_match(rig, "SELECT k FROM T WHERE b")
        assert_rows_match(rig, "SELECT k FROM T WHERE NOT b")

    def test_is_null_and_is_not_null(self, rig):
        mem, _ = assert_rows_match(rig, "SELECT k FROM T WHERE v IS NULL")
        assert len(mem.rows) == 1
        assert_rows_match(rig, "SELECT k FROM T WHERE v IS NOT NULL")

    def test_arithmetic_null_propagation_and_division(self, rig):
        # k / 2 must divide true (Python float), not integer-truncate;
        # NULL operands propagate.
        assert_rows_match(rig, "SELECT k, k / 2 AS half, v + k AS t, "
                               "v * 2 AS dbl, k - 1 AS m FROM T")

    def test_modulo_matches_python_sign(self, rig):
        # Python -1 % 3 == 2; SQLite's native % yields -1.  The py_mod
        # UDF restores Python semantics.
        assert_rows_match(rig, "SELECT k, (0 - k) % 3 AS m FROM T")

    def test_string_concat_plus(self, rig):
        assert_rows_match(rig, "SELECT s + '!' AS x FROM T")

    def test_in_list_with_null_operand(self, rig):
        # None IN (...) is False in the interpreter, never NULL.
        mem, _ = assert_rows_match(
            rig, "SELECT k FROM T WHERE k IN (1, 3)")
        assert sorted(r["k"] for r in mem.rows) == [1, 1, 3]
        assert_rows_match(rig, "SELECT k FROM T WHERE k NOT IN (1, 3)")

    def test_like(self, rig):
        assert_rows_match(rig, "SELECT s FROM T WHERE s LIKE 'a%'")
        assert_rows_match(rig, "SELECT s FROM T WHERE s NOT LIKE '%a%'")

    def test_case_when(self, rig):
        assert_rows_match(
            rig, "SELECT k, CASE WHEN k > 1 THEN 'big' "
                 "WHEN k = 1 THEN 'one' ELSE 'other' END AS size FROM T")

    def test_case_without_else_yields_null(self, rig):
        assert_rows_match(
            rig, "SELECT CASE WHEN k > 2 THEN 'big' END AS size FROM T")

    def test_scalar_functions_via_udfs(self, rig):
        assert_rows_match(
            rig, "SELECT UPPER(s) AS u, LOWER(s) AS l, LEN(s) AS n, "
                 "ABS(v) AS a, ROUND(v) AS r, FLOOR(v) AS f, "
                 "SUBSTR(s, 1, 3) AS pre FROM T")

    def test_round_is_bankers_rounding(self, rig):
        # Python round() is round-half-even; SQLite's ROUND is
        # half-away-from-zero.  2.5 must round to 2, not 3.
        catalog, memory, sqlite, builder = rig
        builder.params = {}
        plan = normalize(builder.build(parse(
            "SELECT ROUND(v) AS r FROM T WHERE v = 2.5")))
        assert sqlite.execute(plan).rows == [{"r": 2}]

    def test_coalesce_lowered_natively(self, rig):
        assert_rows_match(
            rig, "SELECT COALESCE(v, 0.0) AS v0, IFNULL(s, 'x') AS s0 "
                 "FROM T")

    def test_year_month(self, rig):
        assert_rows_match(rig, "SELECT YEAR(d) AS y, MONTH(d) AS m FROM T")


# --------------------------------------------------------------------- #
# type affinity / storage round-trip


class TestStorageRoundTrip:
    def test_typeless_columns_preserve_values_exactly(self, rig):
        # Tables are created with no column affinity, so '0123' must
        # come back as the string '0123', not the integer 123, and
        # floats keep full precision.
        catalog, memory, sqlite, _ = rig
        schema = schema_of("R", [("a", "str"), ("b", "float"),
                                 ("c", "int")])
        version = catalog.register(schema, 1)
        rows = [dict(a="0123", b=0.1 + 0.2, c=10**15 + 1)]
        sqlite.load_table(schema, version.guid, rows)
        got = sqlite.scan_table(version.guid)
        assert got == rows
        assert isinstance(got[0]["a"], str)

    def test_bool_columns_round_trip_as_bool(self, rig):
        # SQLite stores booleans as 0/1; the fetch layer re-coerces
        # columns whose declared class is BOOL.
        catalog, memory, sqlite, builder = rig
        builder.params = {}
        plan = normalize(builder.build(parse("SELECT b FROM T")))
        values = [r["b"] for r in sqlite.execute(plan).rows]
        assert {type(v) for v in values if v is not None} == {bool}

    def test_byte_accounting_matches_store_estimate(self, rig):
        # Selection decisions compare view sizes across backends, so
        # SQL-side SUM(width) must equal _estimate_bytes exactly.
        mem, sq = both(rig, "SELECT k, v, s, b FROM T")
        mem_bytes = [s.bytes_out for _, s in mem.node_stats]
        sql_bytes = [s.bytes_out for _, s in sq.node_stats]
        assert mem_bytes == sql_bytes
