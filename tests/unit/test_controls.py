"""Unit tests for the multi-level enablement controls."""

from repro.core import DeploymentMode, MultiLevelControls


class TestOptIn:
    def test_default_disabled(self):
        controls = MultiLevelControls()
        assert not controls.enabled_for("vc1")

    def test_explicit_opt_in(self):
        controls = MultiLevelControls()
        controls.enable_vc("vc1")
        assert controls.enabled_for("vc1")
        assert not controls.enabled_for("vc2")

    def test_opt_back_out(self):
        controls = MultiLevelControls()
        controls.enable_vc("vc1")
        controls.disable_vc("vc1")
        assert not controls.enabled_for("vc1")

    def test_clear_reverts_to_mode(self):
        controls = MultiLevelControls()
        controls.enable_vc("vc1")
        controls.clear_vc("vc1")
        assert not controls.enabled_for("vc1")


class TestOptOut:
    def test_untiered_vcs_default_enabled(self):
        controls = MultiLevelControls(mode=DeploymentMode.OPT_OUT)
        assert controls.enabled_for("vc1")

    def test_explicit_opt_out_wins(self):
        controls = MultiLevelControls(mode=DeploymentMode.OPT_OUT)
        controls.disable_vc("vc1")
        assert not controls.enabled_for("vc1")

    def test_tiered_onboarding_lowest_first(self):
        controls = MultiLevelControls(mode=DeploymentMode.OPT_OUT)
        controls.assign_tier("bronze", 1)
        controls.assign_tier("silver", 2)
        controls.assign_tier("gold", 3)
        controls.onboard_up_to_tier(2)
        assert controls.enabled_for("bronze")
        assert controls.enabled_for("silver")
        assert not controls.enabled_for("gold")

    def test_onboard_single_tier(self):
        controls = MultiLevelControls(mode=DeploymentMode.OPT_OUT)
        controls.assign_tier("bronze", 1)
        controls.onboard_tier(1)
        assert controls.enabled_for("bronze")


class TestHierarchy:
    def enabled_controls(self):
        controls = MultiLevelControls()
        controls.enable_vc("vc1")
        return controls

    def test_cluster_kill_switch(self):
        controls = self.enabled_controls()
        controls.cluster_enabled = False
        assert not controls.enabled_for("vc1")

    def test_service_kill_switch(self):
        controls = self.enabled_controls()
        assert not controls.enabled_for("vc1", service_enabled=False)

    def test_job_override_can_disable(self):
        controls = self.enabled_controls()
        assert not controls.enabled_for("vc1", job_override=False)

    def test_job_override_cannot_force_enable(self):
        controls = MultiLevelControls()
        assert not controls.enabled_for("vc1", job_override=True)

    def test_full_stack_enabled(self):
        controls = self.enabled_controls()
        assert controls.enabled_for("vc1", job_override=True,
                                    service_enabled=True)
