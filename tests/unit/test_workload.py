"""Unit tests for the workload generator, repository, and analyses."""

import pytest

from repro.common.clock import SECONDS_PER_DAY
from repro.engine import ScopeEngine
from repro.workload import (
    WorkloadRepository,
    consumer_distribution,
    generate_workload,
    overlap_series,
    pipeline_summary,
    sharing_summary,
)
from repro.workload.repository import JobRecord, SubexpressionRecord


@pytest.fixture(scope="module")
def workload():
    return generate_workload(seed=11, virtual_clusters=3, templates_per_vc=8)


class TestGenerator:
    def test_template_count(self, workload):
        assert len(workload.templates) == 24

    def test_templates_spread_across_vcs(self, workload):
        vcs = {t.virtual_cluster for t in workload.templates}
        assert vcs == set(workload.virtual_clusters)

    def test_roughly_80_percent_recurring(self, workload):
        recurring = sum(1 for t in workload.templates if t.recurring)
        assert recurring / len(workload.templates) >= 0.7

    def test_pipeline_lives_in_one_vc(self, workload):
        by_pipeline = {}
        for t in workload.templates:
            by_pipeline.setdefault(t.pipeline_id, set()).add(t.virtual_cluster)
        assert all(len(vcs) == 1 for vcs in by_pipeline.values())

    def test_install_registers_all_datasets(self, workload):
        engine = ScopeEngine()
        workload.install(engine)
        for dataset in workload.datasets():
            assert engine.catalog.has(dataset)
            rows = engine.store.get(engine.catalog.current_guid(dataset))
            assert rows

    def test_cook_rolls_fact_guids_only(self, workload):
        engine = ScopeEngine()
        workload.install(engine)
        before = {d: engine.catalog.current_guid(d)
                  for d in workload.datasets()}
        workload.cook(engine, day=1)
        after = {d: engine.catalog.current_guid(d)
                 for d in workload.datasets()}
        assert before["Events"] != after["Events"]
        assert before["Sessions"] != after["Sessions"]
        assert before["Users"] == after["Users"]

    def test_jobs_for_day_sorted_and_parameterized(self, workload):
        jobs = workload.jobs_for_day(2)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        assert all(j.params.get("runDate") == "d0002" for j in jobs
                   if j.template.uses_run_date)
        assert all(2 * SECONDS_PER_DAY <= t < 3 * SECONDS_PER_DAY
                   for t in times)

    def test_nonrecurring_templates_only_day_zero(self, workload):
        day0_ids = {j.template.template_id for j in workload.jobs_for_day(0)}
        day1_ids = {j.template.template_id for j in workload.jobs_for_day(1)}
        one_off = {t.template_id for t in workload.templates
                   if not t.recurring}
        assert one_off <= day0_ids
        assert not (one_off & {i for i in day1_ids if "adhoc" not in i})

    def test_adhoc_jobs_unique_per_day(self, workload):
        day1 = [j for j in workload.jobs_for_day(1)
                if "adhoc" in j.template.template_id]
        day2 = [j for j in workload.jobs_for_day(2)
                if "adhoc" in j.template.template_id]
        assert len(day1) == workload.adhoc_per_day
        sqls1 = {j.template.sql for j in day1}
        sqls2 = {j.template.sql for j in day2}
        assert not (sqls1 & sqls2)

    def test_generation_deterministic(self):
        a = generate_workload(seed=5, templates_per_vc=6)
        b = generate_workload(seed=5, templates_per_vc=6)
        assert [t.sql for t in a.templates] == [t.sql for t in b.templates]

    def test_different_seeds_differ(self):
        a = generate_workload(seed=5, templates_per_vc=6)
        b = generate_workload(seed=6, templates_per_vc=6)
        assert [t.sql for t in a.templates] != [t.sql for t in b.templates]

    def test_all_sql_parses_and_compiles(self, workload):
        engine = ScopeEngine()
        workload.install(engine)
        for instance in workload.jobs_for_day(0)[:20]:
            compiled = engine.compile(instance.template.sql,
                                      params=instance.params,
                                      reuse_enabled=False)
            assert compiled.plan.schema


def rec(job_id, recurring, strict, vc="vc1", t=0.0, height=1):
    return SubexpressionRecord(
        job_id=job_id, virtual_cluster=vc, submit_time=t,
        template_id=f"tmpl-{job_id}", pipeline_id="p", strict=strict,
        recurring=recurring, tag="tg", operator="Join", height=height,
        eligible=True, rows=10, size_bytes=80, work=100.0,
        input_datasets=("D",))


def job_record(job_id, t=0.0, datasets=("D",), template="tmpl"):
    return JobRecord(job_id=job_id, virtual_cluster="vc1", submit_time=t,
                     template_id=template, pipeline_id="pipe",
                     runtime_version="r1", input_datasets=tuple(datasets),
                     subexpression_count=1)


class TestRepository:
    def test_repeated_fraction(self):
        repo = WorkloadRepository()
        repo.add_job(job_record("j1"), [rec("j1", "r1", "s1")])
        repo.add_job(job_record("j2"), [rec("j2", "r1", "s1")])
        repo.add_job(job_record("j3"), [rec("j3", "r2", "s2")])
        assert repo.repeated_fraction() == pytest.approx(2 / 3)

    def test_average_repeat_frequency(self):
        repo = WorkloadRepository()
        for i in range(4):
            repo.add_job(job_record(f"j{i}"), [rec(f"j{i}", "r1", "s1")])
        repo.add_job(job_record("j9"), [rec("j9", "r2", "s2")])
        assert repo.average_repeat_frequency() == pytest.approx(2.5)

    def test_empty_repo_statistics(self):
        repo = WorkloadRepository()
        assert repo.repeated_fraction() == 0.0
        assert repo.average_repeat_frequency() == 0.0

    def test_window_filters_by_time(self):
        repo = WorkloadRepository()
        repo.add_job(job_record("j1", t=10.0), [rec("j1", "r1", "s1", t=10.0)])
        repo.add_job(job_record("j2", t=99.0), [rec("j2", "r1", "s1", t=99.0)])
        window = repo.window(0.0, 50.0)
        assert window.total_jobs() == 1
        assert window.total_subexpressions() == 1

    def test_occurrences_lookup(self):
        repo = WorkloadRepository()
        repo.add_job(job_record("j1"), [rec("j1", "r1", "s1")])
        repo.add_job(job_record("j2"), [rec("j2", "r1", "s1")])
        assert len(repo.occurrences("r1")) == 2
        assert repo.occurrences("missing") == []

    def test_dataset_consumers_by_template(self):
        repo = WorkloadRepository()
        repo.add_job(job_record("j1", template="t1", datasets=("A", "B")), [])
        repo.add_job(job_record("j2", template="t2", datasets=("A",)), [])
        repo.add_job(job_record("j3", template="t1", datasets=("A",)), [])
        consumers = repo.dataset_consumers()
        assert consumers["A"] == {"t1", "t2"}
        assert consumers["B"] == {"t1"}


class TestAnalysis:
    def _repo(self):
        repo = WorkloadRepository()
        for i in range(6):
            repo.add_job(job_record(f"j{i}", t=i * SECONDS_PER_DAY / 2,
                                    template=f"t{i % 3}",
                                    datasets=("A",) if i % 2 else ("A", "B")),
                         [rec(f"j{i}", "r1", f"s{i // 2}",
                              t=i * SECONDS_PER_DAY / 2)])
        return repo

    def test_consumer_distribution_is_cdf(self):
        points = consumer_distribution(self._repo())
        fractions = [p.fraction_of_streams for p in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        counts = [p.distinct_consumers for p in points]
        assert counts == sorted(counts)

    def test_sharing_summary(self):
        summary = sharing_summary(self._repo())
        assert summary["datasets"] == 2
        assert summary["shared_fraction"] == 1.0
        assert summary["max_consumers"] >= summary["p90_consumers"]

    def test_sharing_summary_empty(self):
        assert sharing_summary(WorkloadRepository())["datasets"] == 0

    def test_overlap_series_buckets(self):
        points = overlap_series(self._repo(), bucket_days=1)
        assert len(points) == 3
        assert all(0.0 <= p.repeated_fraction <= 1.0 for p in points)

    def test_pipeline_summary(self):
        summary = pipeline_summary(self._repo())
        assert summary["jobs"] == 6
        assert summary["virtual_clusters"] == 1
        assert summary["runtime_versions"] == 1
