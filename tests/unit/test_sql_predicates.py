"""Unit tests for IN / BETWEEN / LIKE predicates end to end."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.common.errors import ParseError
from repro.executor import Executor
from repro.plan import InList, Like, PlanBuilder, normalize
from repro.signatures import strict_signature
from repro.sql import parse
from repro.storage import DataStore


@pytest.fixture
def env():
    catalog = Catalog()
    store = DataStore()
    version = catalog.register(
        schema_of("T", [("k", "int"), ("name", "str"), ("v", "float")]), 8)
    store.put(version.guid, [
        dict(k=1, name="alpha", v=1.0),
        dict(k=2, name="beta", v=2.0),
        dict(k=3, name="alphabet", v=3.0),
        dict(k=4, name="gamma", v=4.0),
        dict(k=5, name=None, v=5.0),
        dict(k=6, name="al", v=6.0),
        dict(k=7, name="ALPHA", v=7.0),
        dict(k=8, name="beta", v=None),
    ])
    return catalog, store


def run(env, sql):
    catalog, store = env
    plan = normalize(PlanBuilder(catalog).build(parse(sql)))
    return Executor(store).execute(plan).rows


class TestInList:
    def test_basic_in(self, env):
        rows = run(env, "SELECT k FROM T WHERE k IN (1, 3, 5)")
        assert sorted(r["k"] for r in rows) == [1, 3, 5]

    def test_not_in(self, env):
        rows = run(env, "SELECT k FROM T WHERE k NOT IN (1, 2, 3, 4, 5, 6)")
        assert sorted(r["k"] for r in rows) == [7, 8]

    def test_string_in(self, env):
        rows = run(env, "SELECT k FROM T WHERE name IN ('alpha', 'beta')")
        assert sorted(r["k"] for r in rows) == [1, 2, 8]

    def test_null_never_in(self, env):
        rows = run(env, "SELECT k FROM T WHERE name IN ('alpha')")
        assert 5 not in {r["k"] for r in rows}
        rows = run(env, "SELECT k FROM T WHERE name NOT IN ('alpha')")
        assert 5 not in {r["k"] for r in rows}  # SQL-ish: NULL matches nothing

    def test_in_signature_order_insensitive(self, env):
        catalog, _ = env
        a = normalize(PlanBuilder(catalog).build(parse(
            "SELECT k FROM T WHERE k IN (1, 2, 3)")))
        b = normalize(PlanBuilder(catalog).build(parse(
            "SELECT k FROM T WHERE k IN (3, 1, 2)")))
        assert strict_signature(a) == strict_signature(b)

    def test_in_requires_literals(self, env):
        with pytest.raises(ParseError):
            parse("SELECT k FROM T WHERE k IN (v, 2)")

    def test_in_parses_to_inlist_node(self):
        stmt = parse("SELECT k FROM T WHERE k IN (1, 2)").selects[0]
        assert isinstance(stmt.where, InList)
        assert not stmt.where.negated


class TestBetween:
    def test_between_inclusive(self, env):
        rows = run(env, "SELECT k FROM T WHERE k BETWEEN 2 AND 4")
        assert sorted(r["k"] for r in rows) == [2, 3, 4]

    def test_not_between(self, env):
        rows = run(env, "SELECT k FROM T WHERE k NOT BETWEEN 2 AND 7")
        assert sorted(r["k"] for r in rows) == [1, 8]

    def test_between_desugars_to_range(self, env):
        catalog, _ = env
        a = normalize(PlanBuilder(catalog).build(parse(
            "SELECT k FROM T WHERE k BETWEEN 2 AND 4")))
        b = normalize(PlanBuilder(catalog).build(parse(
            "SELECT k FROM T WHERE k >= 2 AND k <= 4")))
        assert strict_signature(a) == strict_signature(b)

    def test_between_in_conjunction(self, env):
        rows = run(env,
                   "SELECT k FROM T WHERE k BETWEEN 1 AND 6 AND v > 2.5")
        assert sorted(r["k"] for r in rows) == [3, 4, 5, 6]


class TestLike:
    def test_prefix_match(self, env):
        rows = run(env, "SELECT k FROM T WHERE name LIKE 'alpha%'")
        assert sorted(r["k"] for r in rows) == [1, 3]

    def test_underscore_single_char(self, env):
        rows = run(env, "SELECT k FROM T WHERE name LIKE 'a_'")
        assert sorted(r["k"] for r in rows) == [6]

    def test_contains_match(self, env):
        rows = run(env, "SELECT k FROM T WHERE name LIKE '%et%'")
        assert sorted(r["k"] for r in rows) == [2, 3, 8]

    def test_not_like(self, env):
        rows = run(env, "SELECT k FROM T WHERE name NOT LIKE '%a%'")
        # 'beta' x2 contain 'a'... check: beta has 'a'; so only k=7? ALPHA
        # is uppercase (LIKE is case sensitive here).
        assert sorted(r["k"] for r in rows) == [7]

    def test_like_is_case_sensitive(self, env):
        rows = run(env, "SELECT k FROM T WHERE name LIKE 'ALPHA'")
        assert sorted(r["k"] for r in rows) == [7]

    def test_null_never_like(self, env):
        rows = run(env, "SELECT k FROM T WHERE name LIKE '%'")
        assert 5 not in {r["k"] for r in rows}

    def test_like_regex_chars_escaped(self, env):
        catalog, store = env
        version = catalog.register(
            schema_of("P", [("s", "str")]), 2)
        store.put(version.guid, [dict(s="a.b"), dict(s="axb")])
        rows = run((catalog, store), "SELECT s FROM P WHERE s LIKE 'a.b'")
        assert [r["s"] for r in rows] == ["a.b"]

    def test_like_parses_to_node(self):
        stmt = parse("SELECT k FROM T WHERE name LIKE 'x%'").selects[0]
        assert isinstance(stmt.where, Like)
        assert stmt.where.pattern == "x%"


class TestLogicalNotStillWorks:
    def test_plain_not_predicate(self, env):
        rows = run(env, "SELECT k FROM T WHERE NOT k = 1")
        assert 1 not in {r["k"] for r in rows}

    def test_not_in_within_and(self, env):
        rows = run(env,
                   "SELECT k FROM T WHERE v > 1 AND k NOT IN (2, 3)")
        assert sorted(r["k"] for r in rows) == [4, 5, 6, 7]
