"""Unit tests for top-down view matching and bottom-up view buildout."""

import pytest

from repro.catalog import Catalog, schema_of
from repro.optimizer import (
    Annotation,
    OptimizerContext,
    insert_spools,
    match_views,
    optimize,
    view_path_for,
)
from repro.plan import Filter, Join, PlanBuilder, Spool, ViewScan, normalize
from repro.signatures import (
    enumerate_subexpressions,
    recurring_signature,
    signature_tag,
    strict_signature,
)
from repro.sql import parse
from repro.storage import ViewStore


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(schema_of("Sales", [
        ("CustomerId", "int"), ("Price", "float")]), 1000)
    cat.register(schema_of("Customer", [
        ("CustomerId", "int"), ("MktSegment", "str")]), 100)
    return cat


SQL = ("SELECT CustomerId, SUM(Price) FROM Sales JOIN Customer "
       "WHERE MktSegment = 'Asia' GROUP BY CustomerId")


def build(catalog, sql=SQL):
    from repro.optimizer.rules import apply_rewrites
    return normalize(apply_rewrites(PlanBuilder(catalog).build(parse(sql))))


def join_subexpr(plan):
    return max((s for s in enumerate_subexpressions(plan)
                if isinstance(s.plan, Join)), key=lambda s: s.height)


def make_ctx(catalog, views=None, **kwargs):
    return OptimizerContext(catalog=catalog,
                            view_store=views or ViewStore(), **kwargs)


def seal_view(ctx, sub, rows=40, now=0.0):
    ctx.view_store.begin_materialize(
        sub.strict, view_path_for("vc", sub.strict), sub.plan.schema,
        "vc", now, recurring_signature=sub.recurring)
    ctx.view_store.seal(sub.strict, now, rows, rows * 8)


class TestMatching:
    def test_matches_available_view(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        sub = join_subexpr(plan)
        seal_view(ctx, sub)
        outcome = match_views(plan, ctx, now=1.0)
        assert outcome.reused
        views = [n for n in outcome.plan.walk() if isinstance(n, ViewScan)]
        assert len(views) == 1
        assert views[0].signature == sub.strict
        assert views[0].rows == 40

    def test_no_match_without_view(self, catalog):
        plan = build(catalog)
        outcome = match_views(plan, make_ctx(catalog), now=1.0)
        assert not outcome.reused
        assert outcome.plan == plan

    def test_unsealed_view_not_matched(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        sub = join_subexpr(plan)
        ctx.view_store.begin_materialize(
            sub.strict, "p", sub.plan.schema, "vc", now=0.0)
        assert not match_views(plan, ctx, now=1.0).reused

    def test_expired_view_not_matched(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog, views=ViewStore(ttl_seconds=10.0))
        sub = join_subexpr(plan)
        seal_view(ctx, sub)
        assert not match_views(plan, ctx, now=100.0).reused

    def test_costly_view_rejected(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        sub = join_subexpr(plan)
        seal_view(ctx, sub, rows=10_000_000)  # reading it costs more
        assert not match_views(plan, ctx, now=1.0).reused

    def test_matching_preserves_schema(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        seal_view(ctx, join_subexpr(plan))
        outcome = match_views(plan, ctx, now=1.0)
        assert outcome.plan.schema == plan.schema

    def test_top_down_prefers_larger_subexpression(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        subs = enumerate_subexpressions(plan)
        join = join_subexpr(plan)
        inner_filter = next(s for s in subs if isinstance(s.plan, Filter))
        seal_view(ctx, join, rows=40)
        seal_view(ctx, inner_filter, rows=20)
        outcome = match_views(plan, ctx, now=1.0)
        views = [n for n in outcome.plan.walk() if isinstance(n, ViewScan)]
        assert [v.signature for v in views] == [join.strict]

    def test_reuse_disabled_skips_matching(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog, reuse_enabled=False)
        seal_view(ctx, join_subexpr(plan))
        assert not match_views(plan, ctx, now=1.0).reused

    def test_match_records_reuse_in_store(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        sub = join_subexpr(plan)
        seal_view(ctx, sub)
        match_views(plan, ctx, now=1.0)
        assert ctx.view_store.total_reused == 1

    def test_viewscan_keeps_parent_signatures_stable(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        seal_view(ctx, join_subexpr(plan))
        outcome = match_views(plan, ctx, now=1.0)
        assert strict_signature(outcome.plan) == strict_signature(plan)
        assert recurring_signature(outcome.plan) == recurring_signature(plan)


class TestBuildout:
    def annotate(self, ctx, sub):
        ctx.annotations[sub.recurring] = Annotation(
            sub.recurring, signature_tag(sub.recurring))

    def test_inserts_spool_for_selected_signature(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        sub = join_subexpr(plan)
        self.annotate(ctx, sub)
        outcome = insert_spools(plan, ctx, now=0.0)
        assert outcome.builds
        spools = [n for n in outcome.plan.walk() if isinstance(n, Spool)]
        assert len(spools) == 1
        assert spools[0].signature == sub.strict
        assert ctx.view_store.is_materializing(sub.strict, now=0.0)

    def test_no_annotations_no_spools(self, catalog):
        plan = build(catalog)
        outcome = insert_spools(plan, make_ctx(catalog), now=0.0)
        assert not outcome.builds

    def test_already_available_not_rebuilt(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        sub = join_subexpr(plan)
        self.annotate(ctx, sub)
        seal_view(ctx, sub)
        assert not insert_spools(plan, ctx, now=1.0).builds

    def test_in_flight_materialization_not_duplicated(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        sub = join_subexpr(plan)
        self.annotate(ctx, sub)
        insert_spools(plan, ctx, now=0.0)
        # A concurrent job compiling now must not double-build.
        assert not insert_spools(plan, ctx, now=0.0).builds

    def test_lock_denial_blocks_build(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog, acquire_view_lock=lambda sig: False)
        self.annotate(ctx, join_subexpr(plan))
        assert not insert_spools(plan, ctx, now=0.0).builds

    def test_max_views_per_job_enforced(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog, max_views_per_job=1)
        for sub in enumerate_subexpressions(plan):
            if sub.height >= 1:
                self.annotate(ctx, sub)
        outcome = insert_spools(plan, ctx, now=0.0)
        assert len(outcome.proposals) == 1

    def test_scans_never_spooled(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog)
        for sub in enumerate_subexpressions(plan):
            self.annotate(ctx, sub)
        outcome = insert_spools(plan, ctx, now=0.0)
        for spool in (n for n in outcome.plan.walk() if isinstance(n, Spool)):
            assert not isinstance(spool.child, type(plan)) or True
        from repro.plan import Scan
        assert not any(isinstance(n.child, Scan)
                       for n in outcome.plan.walk() if isinstance(n, Spool))

    def test_view_path_encodes_signature(self, catalog):
        plan = build(catalog)
        ctx = make_ctx(catalog, virtual_cluster="vc7")
        sub = join_subexpr(plan)
        self.annotate(ctx, sub)
        outcome = insert_spools(plan, ctx, now=0.0)
        assert sub.strict in outcome.proposals[0].view_path
        assert "vc7" in outcome.proposals[0].view_path

    def test_nondeterministic_subtree_never_built(self, catalog):
        plan = build(catalog,
                     "SELECT CustomerId FROM Sales "
                     "PROCESS USING Rng NONDETERMINISTIC")
        ctx = make_ctx(catalog)
        for sub in enumerate_subexpressions(plan):
            self.annotate(ctx, sub)
        outcome = insert_spools(plan, ctx, now=0.0)
        spooled_ops = {type(n.child).__name__
                       for n in outcome.plan.walk() if isinstance(n, Spool)}
        assert "Process" not in spooled_ops


class TestPipeline:
    def test_optimize_reports_costs(self, catalog):
        ctx = make_ctx(catalog)
        raw = PlanBuilder(catalog).build(parse(SQL))
        optimized = optimize(raw, ctx, now=0.0)
        assert optimized.estimated_cost > 0
        assert optimized.estimated_cost_without_reuse > 0
        assert not optimized.matches and not optimized.proposals

    def test_optimize_match_then_build_are_exclusive_for_same_sig(self, catalog):
        ctx = make_ctx(catalog)
        raw = PlanBuilder(catalog).build(parse(SQL))
        plan = build(catalog)
        sub = join_subexpr(plan)
        ctx.annotations[sub.recurring] = Annotation(
            sub.recurring, signature_tag(sub.recurring))
        first = optimize(raw, ctx, now=0.0)
        assert first.built_views == 1 and first.reused_views == 0
        spool = next(n for n in first.plan.walk() if isinstance(n, Spool))
        ctx.view_store.seal(spool.signature, 1.0, 40, 320)
        second = optimize(raw, ctx, now=2.0)
        assert second.reused_views == 1 and second.built_views == 0
