"""Unit tests for the simulated clock and seeded RNG helpers."""

import pytest

from repro.common.clock import SECONDS_PER_DAY, SimClock
from repro.common.rng import bounded_gauss, rng_for, weighted_choice, zipf_weights


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(10.0)
        assert clock.now == 10.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_is_monotonic(self):
        clock = SimClock(100.0)
        clock.advance_to(50.0)
        assert clock.now == 100.0
        clock.advance_to(200.0)
        assert clock.now == 200.0

    def test_day_index(self):
        clock = SimClock()
        assert clock.day() == 0
        clock.advance(SECONDS_PER_DAY * 2 + 1)
        assert clock.day() == 2


class TestRng:
    def test_rng_for_reproducible(self):
        assert rng_for(1, "a").random() == rng_for(1, "a").random()

    def test_rng_for_independent_names(self):
        assert rng_for(1, "a").random() != rng_for(1, "b").random()

    def test_zipf_weights_sum_to_one(self):
        weights = zipf_weights(100)
        assert abs(sum(weights) - 1.0) < 1e-9

    def test_zipf_weights_decreasing(self):
        weights = zipf_weights(10)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_zipf_weights_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_weighted_choice_respects_zero_weight(self):
        rng = rng_for(7, "choice")
        picks = {weighted_choice(rng, ["a", "b"], [1.0, 0.0])
                 for _ in range(50)}
        assert picks == {"a"}

    def test_bounded_gauss_clamps(self):
        rng = rng_for(7, "gauss")
        for _ in range(200):
            value = bounded_gauss(rng, 0.0, 100.0, -1.0, 1.0)
            assert -1.0 <= value <= 1.0
