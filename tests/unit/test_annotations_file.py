"""Unit tests for annotations files and debug compilation (Figure 5)."""

import pytest

from repro.catalog import schema_of
from repro.common.errors import InsightsError
from repro.engine import ScopeEngine
from repro.insights.annotations_file import (
    compile_with_annotations,
    dump_annotations,
    export_current_annotations,
    load_annotations,
)
from repro.optimizer.context import Annotation


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 5, v=float(i)) for i in range(50)])
    eng.register_table(
        schema_of("D", [("k", "int"), ("name", "str")]),
        [dict(k=i, name=f"n{i}") for i in range(5)])
    return eng


SQL = "SELECT name, SUM(v) AS s FROM T JOIN D GROUP BY name"


def selected_annotations(engine):
    from repro.plan import PlanBuilder, normalize
    from repro.optimizer.rules import apply_rewrites
    from repro.signatures import enumerate_subexpressions
    from repro.sql import parse
    plan = normalize(apply_rewrites(
        PlanBuilder(engine.catalog).build(parse(SQL))))
    subs = enumerate_subexpressions(plan, engine.signature_salt)
    join = max((s for s in subs if s.operator == "Join"),
               key=lambda s: s.height)
    return [Annotation(join.recurring, join.tag, expected_rows=40)]


class TestSerialization:
    def test_round_trip(self, engine):
        annotations = selected_annotations(engine)
        text = dump_annotations(annotations, runtime_version="scope-r1")
        loaded = load_annotations(text)
        assert loaded == annotations

    def test_export_current_generation(self, engine):
        engine.insights.publish(selected_annotations(engine))
        text = export_current_annotations(engine)
        assert len(load_annotations(text)) == 1

    def test_invalid_json_rejected(self):
        with pytest.raises(InsightsError):
            load_annotations("{not json")

    def test_wrong_version_rejected(self):
        with pytest.raises(InsightsError):
            load_annotations('{"format_version": 99, "annotations": []}')

    def test_malformed_entry_rejected(self):
        with pytest.raises(InsightsError):
            load_annotations(
                '{"format_version": 1, "annotations": [{"tag": "t"}]}')

    def test_non_object_rejected(self):
        with pytest.raises(InsightsError):
            load_annotations("[1, 2, 3]")


class TestDebugCompilation:
    def test_reproduces_buildout_without_service(self, engine):
        text = dump_annotations(selected_annotations(engine))
        # The insights service has nothing published -- the file drives it.
        assert engine.insights.annotation_count() == 0
        compiled = compile_with_annotations(engine, SQL, text)
        assert compiled.built_views == 1

    def test_reproduces_match_after_materialization(self, engine):
        text = dump_annotations(selected_annotations(engine))
        compiled = compile_with_annotations(engine, SQL, text)
        run = engine.execute(compiled, now=0.0)
        assert run.sealed_views
        debug = compile_with_annotations(engine, SQL, text, now=1.0,
                                         job_id="incident-42")
        assert debug.reused_views == 1
        assert debug.job_id == "incident-42"

    def test_empty_file_means_plain_compilation(self, engine):
        text = dump_annotations([])
        compiled = compile_with_annotations(engine, SQL, text)
        assert compiled.built_views == 0
        assert compiled.reused_views == 0
