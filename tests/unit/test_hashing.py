"""Unit tests for deterministic hashing helpers."""

from repro.common.hashing import combine_unordered, short_tag, stable_hash


def test_stable_hash_deterministic():
    assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)


def test_stable_hash_distinguishes_boundaries():
    assert stable_hash("ab", "c") != stable_hash("a", "bc")


def test_stable_hash_distinguishes_types():
    assert stable_hash(1) != stable_hash("1")
    assert stable_hash(1) != stable_hash(1.0)
    assert stable_hash(True) != stable_hash(1)


def test_stable_hash_nested_structures():
    assert stable_hash(["a", ["b", "c"]]) != stable_hash(["a", "b", ["c"]])
    assert stable_hash(("x", "y")) == stable_hash(["x", "y"])


def test_stable_hash_none():
    assert stable_hash(None) != stable_hash("None")


def test_combine_unordered_is_order_insensitive():
    assert combine_unordered(["d1", "d2"]) == combine_unordered(["d2", "d1"])


def test_combine_unordered_multiset():
    assert combine_unordered(["d1", "d1"]) != combine_unordered(["d1"])


def test_short_tag_truncates_and_differs_from_digest():
    digest = stable_hash("x")
    tag = short_tag(digest)
    assert len(tag) == 8
    assert not digest.startswith(tag)


def test_short_tag_stable():
    assert short_tag("abc") == short_tag("abc")
