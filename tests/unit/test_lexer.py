"""Unit tests for the SQL lexer."""

import pytest

from repro.common.errors import ParseError
from repro.sql.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    tokens = tokenize("select FROM wHeRe")
    assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
    assert all(t.kind == "KEYWORD" for t in tokens[:-1])


def test_identifiers_preserve_case():
    token = tokenize("MktSegment")[0]
    assert token.kind == "IDENT"
    assert token.value == "MktSegment"


def test_numbers_int_and_float():
    tokens = tokenize("42 3.14")
    assert tokens[0].kind == "NUMBER" and tokens[0].value == "42"
    assert tokens[1].kind == "NUMBER" and tokens[1].value == "3.14"


def test_qualified_name_not_decimal():
    assert values("t.col") == ["t", ".", "col"]


def test_string_literal_with_escaped_quote():
    token = tokenize("'it''s'")[0]
    assert token.kind == "STRING"
    assert token.value == "it's"


def test_unterminated_string_raises():
    with pytest.raises(ParseError):
        tokenize("'oops")


def test_parameter_token():
    token = tokenize("@runDate")[0]
    assert token.kind == "PARAM"
    assert token.value == "runDate"


def test_bare_at_sign_raises():
    with pytest.raises(ParseError):
        tokenize("@ x")


def test_multichar_operators_maximal_munch():
    assert values("a <= b <> c >= d") == ["a", "<=", "b", "<>", "c", ">=", "d"]


def test_line_comments_skipped():
    assert values("SELECT -- comment here\n x") == ["SELECT", "x"]


def test_unexpected_character_raises():
    with pytest.raises(ParseError):
        tokenize("SELECT #")


def test_eof_token_terminates_stream():
    tokens = tokenize("x")
    assert tokens[-1].kind == "EOF"


def test_parse_error_reports_line_and_column():
    with pytest.raises(ParseError) as excinfo:
        tokenize("SELECT\n  #")
    assert "line 2" in str(excinfo.value)
