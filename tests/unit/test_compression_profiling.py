"""Unit tests for workload compression and the profiling helpers."""

import pytest

from repro.workload import generate_workload
from repro.workload.compression import (
    compress_workload,
    job_class_signature,
    replay_plan,
)
from repro.workload.profiling import (
    compile_only_repository,
    synthesize_dataset_sharing,
)
from repro.workload.repository import WorkloadRepository


@pytest.fixture(scope="module")
def repository():
    workload = generate_workload(seed=4, virtual_clusters=2,
                                 templates_per_vc=6)
    return compile_only_repository(workload, days=3)


class TestCompression:
    def test_recurring_instances_collapse(self, repository):
        compressed = compress_workload(repository)
        # Three days of recurring templates collapse ~3x (ad-hocs stay).
        assert compressed.compression_ratio > 1.5
        assert compressed.coverage() == repository.total_jobs()

    def test_representatives_are_earliest_instances(self, repository):
        compressed = compress_workload(repository)
        for representative in compressed.representatives:
            if representative.weight >= 3:
                # A daily template's exemplar comes from day 0.
                assert representative.job.submit_time < 86400.0

    def test_weights_ordered_descending(self, repository):
        compressed = compress_workload(repository)
        weights = [r.weight for r in compressed.representatives]
        assert weights == sorted(weights, reverse=True)

    def test_class_signature_stable_across_days(self, repository):
        by_template = {}
        for job in repository.jobs:
            if "adhoc" in job.template_id:
                continue
            by_template.setdefault(job.template_id, []).append(job.job_id)
        template, job_ids = next(
            (t, ids) for t, ids in by_template.items() if len(ids) >= 2)
        first = job_class_signature(repository, job_ids[0])
        second = job_class_signature(repository, job_ids[1])
        assert first == second

    def test_replay_plan_truncation(self, repository):
        compressed = compress_workload(repository)
        full = replay_plan(compressed)
        top = replay_plan(compressed, max_representatives=3)
        assert len(top) == 3
        assert len(full) == len(compressed.representatives)
        # Truncation keeps the heaviest classes.
        assert sum(w for _, w in top) >= sum(
            w for _, w in full[:3])

    def test_empty_repository(self):
        compressed = compress_workload(WorkloadRepository())
        assert compressed.representatives == []
        assert compressed.compression_ratio == 1.0


class TestProfiling:
    def test_compile_only_matches_generator_shape(self, repository):
        assert repository.total_jobs() > 0
        assert repository.repeated_fraction() > 0.7

    def test_compile_only_has_no_runtime_numbers(self, repository):
        assert all(r.rows == 0 for r in repository.subexpressions)

    def test_compile_only_tracks_tree_structure(self, repository):
        roots = [r for r in repository.subexpressions
                 if r.parent_node_id is None]
        jobs = {r.job_id for r in repository.subexpressions}
        assert len(roots) == len(jobs)

    def test_synthesized_sharing_is_heavy_tailed(self):
        repo = synthesize_dataset_sharing("c1", seed=1, streams=100,
                                          consumers=400)
        consumers = sorted((len(c) for c in
                            repo.dataset_consumers().values()),
                           reverse=True)
        assert consumers[0] > 5 * consumers[len(consumers) // 2]

    def test_synthesized_sharing_deterministic(self):
        a = synthesize_dataset_sharing("c1", seed=1, streams=50,
                                       consumers=100)
        b = synthesize_dataset_sharing("c1", seed=1, streams=50,
                                       consumers=100)
        assert [j.input_datasets for j in a.jobs] == \
            [j.input_datasets for j in b.jobs]

    def test_skew_increases_top_stream_consumers(self):
        flat = synthesize_dataset_sharing("c", seed=2, streams=100,
                                          consumers=500, skew=0.8)
        skewed = synthesize_dataset_sharing("c", seed=2, streams=100,
                                            consumers=500, skew=1.4)
        top = lambda repo: max(len(c) for c in
                               repo.dataset_consumers().values())
        assert top(skewed) > top(flat)
