"""Unit tests for the lint framework: findings, reports, the analyzer."""

import json

import pytest

from repro.analysis import (
    ACYCLICITY_RULE,
    AnalysisContext,
    Analyzer,
    Finding,
    Report,
    Rule,
    default_rules,
    rule_catalog,
    safe_walk,
)
from repro.obs import FlightRecorder
from repro.obs import events as obs_events
from repro.plan.expressions import ColumnRef
from repro.plan.logical import Filter, Project, Scan


def scan(name="Sales", columns=("A", "B")):
    return Scan(name, tuple(columns), stream_guid=f"guid-{name}")


# --------------------------------------------------------------------- #
# findings and reports


def test_finding_rejects_unknown_severity():
    with pytest.raises(ValueError):
        Finding(rule="x", severity="fatal", message="boom")


def test_finding_render_includes_job_and_path():
    finding = Finding(rule="r", severity="warn", message="m",
                      job_id="job-1", path="Project/Scan[0]")
    text = finding.render()
    assert "[job-1]" in text and "@Project/Scan[0]" in text


def test_report_exit_code_and_ok():
    report = Report([Finding(rule="r", severity="warn", message="w")])
    assert report.ok and report.exit_code == 0
    report.add(Finding(rule="r", severity="error", message="e"))
    assert not report.ok and report.exit_code == 1


def test_report_sorts_errors_first():
    report = Report([
        Finding(rule="b", severity="info", message="i"),
        Finding(rule="a", severity="error", message="e"),
        Finding(rule="c", severity="warn", message="w"),
    ])
    severities = [f.severity for f in report.sorted_findings()]
    assert severities == ["error", "warn", "info"]


def test_report_json_roundtrip():
    report = Report([Finding(rule="r", severity="error", message="e",
                             detail={"k": 1})])
    report.plans_analyzed = 3
    payload = json.loads(report.to_json())
    assert payload["ok"] is False
    assert payload["counts"]["error"] == 1
    assert payload["plans_analyzed"] == 3
    assert payload["findings"][0]["detail"] == {"k": 1}


def test_report_extend_merges_counts():
    a = Report([Finding(rule="r", severity="info", message="1")])
    a.plans_analyzed = 1
    b = Report([Finding(rule="r", severity="info", message="2")])
    b.plans_analyzed = 2
    a.extend(b)
    assert len(a.findings) == 2 and a.plans_analyzed == 3


def test_render_text_has_summary_line():
    report = Report()
    report.plans_analyzed = 2
    report.rules_run = 5
    assert report.render_text().endswith(
        "ok: 0 errors, 0 warnings, 0 info (2 plans, 5 rules)")


# --------------------------------------------------------------------- #
# safe_walk


def test_safe_walk_visits_all_nodes_with_paths():
    plan = Project(Filter(scan(), ColumnRef("A")), (ColumnRef("A"),), ("A",))
    pairs, cycle = safe_walk(plan)
    assert cycle is None
    assert [p for _, p in pairs] == [
        "Project", "Project/Filter[0]", "Project/Filter[0]/Scan[0]"]


def test_safe_walk_detects_cycle():
    inner = Filter(scan(), ColumnRef("A"))
    outer = Filter(inner, ColumnRef("B"))
    # Corrupt the tree into a cycle (bypasses frozen-dataclass checks).
    object.__setattr__(inner, "child", outer)
    pairs, cycle = safe_walk(outer)
    assert cycle is not None
    assert pairs  # visited the prefix before the back-edge


def test_shared_subtrees_are_not_cycles():
    shared = scan()
    plan = Project(Filter(shared, ColumnRef("A")), (ColumnRef("A"),), ("A",))
    _, cycle = safe_walk(plan)
    assert cycle is None


# --------------------------------------------------------------------- #
# the analyzer


class AlwaysFires(Rule):
    name = "test-always"
    severity = "warn"
    description = "fires on every node"

    def check_node(self, node, path, ctx):
        yield self.finding("saw a node", path=path)


class Crashes(Rule):
    name = "test-crash"
    description = "raises mid-check"

    def check_plan(self, plan, ctx):
        raise RuntimeError("kaboom")


def test_analyzer_runs_rules_and_attaches_job_id():
    analyzer = Analyzer(rules=[AlwaysFires()])
    report = analyzer.analyze_plan(scan(), job_id="job-9")
    assert report.findings and all(f.job_id == "job-9"
                                   for f in report.findings)


def test_analyzer_suppression_by_name():
    analyzer = Analyzer(rules=[AlwaysFires()], suppress=["test-always"])
    assert analyzer.analyze_plan(scan()).findings == []


def test_rule_crash_becomes_error_finding():
    report = Analyzer(rules=[Crashes()]).analyze_plan(scan())
    assert not report.ok
    assert "rule crashed" in report.errors[0].message
    assert report.errors[0].rule == "test-crash"


def test_cyclic_plan_short_circuits_all_rules():
    inner = Filter(scan(), ColumnRef("A"))
    outer = Filter(inner, ColumnRef("B"))
    object.__setattr__(inner, "child", outer)
    report = Analyzer(rules=[AlwaysFires()]).analyze_plan(outer)
    assert [f.rule for f in report.findings] == [ACYCLICITY_RULE]
    assert not report.ok


def test_findings_flow_through_flight_recorder():
    recorder = FlightRecorder()
    analyzer = Analyzer(rules=[AlwaysFires()], recorder=recorder)
    report = analyzer.analyze_plan(scan(), AnalysisContext(now=42.0),
                                   job_id="job-1")
    events = recorder.events.events(kind=obs_events.LINT_FINDING)
    assert len(events) == len(report.findings)
    assert events[0].at == 42.0 and events[0].job_id == "job-1"
    assert events[0].attrs["rule"] == "test-always"
    assert recorder.metrics.counters[
        f"events.{obs_events.LINT_FINDING}"] == len(events)


def test_analyze_workload_runs_workload_rules_once():
    calls = []

    class WorkloadRule(Rule):
        name = "test-workload"
        description = "counts invocations"

        def check_workload(self, plans, ctx):
            calls.append(len(plans))
            return ()

    analyzer = Analyzer(rules=[WorkloadRule()])
    analyzer.analyze_workload([("a", scan()), ("b", scan("Other"))])
    assert calls == [2]


def test_default_rules_cover_all_three_packs():
    names = {rule.name for rule in default_rules()}
    assert any(name.startswith("plan-") for name in names)
    assert any(name.startswith("sig-") for name in names)
    assert any(name.startswith("reuse-") for name in names)
    assert len(names) >= 15


def test_rule_catalog_entries_are_documented():
    for name, severity, description in rule_catalog():
        assert name and description
        assert severity in ("info", "warn", "error")
