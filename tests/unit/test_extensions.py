"""Unit tests for the Section-5 extension prototypes."""

import pytest

from repro.extensions import (
    BitVectorCatalog,
    BloomFilter,
    ContainmentChecker,
    build_join_filter,
    concurrency_histogram,
    concurrent_joins,
    estimate_pipelined_sharing,
    generalized_match,
    join_set_opportunities,
    semi_join_reduce,
)
from repro.plan.expressions import BinaryOp, ColumnRef, Literal, conjoin
from repro.plan.logical import Filter, Scan, ViewScan
from repro.workload.repository import (
    JobRecord,
    SubexpressionRecord,
    WorkloadRepository,
)


def pred(column, op, value):
    return BinaryOp(op, ColumnRef(column), Literal(value))


class TestContainment:
    def setup_method(self):
        self.checker = ContainmentChecker()

    def test_paper_example(self):
        # View: CustomerId > 5 contains query: CustomerId > 6.
        assert self.checker.contains(pred("CustomerId", ">", 5),
                                     pred("CustomerId", ">", 6))
        assert not self.checker.contains(pred("CustomerId", ">", 6),
                                         pred("CustomerId", ">", 5))

    def test_boundary_inclusivity(self):
        assert self.checker.contains(pred("x", ">=", 5), pred("x", ">", 5))
        assert not self.checker.contains(pred("x", ">", 5), pred("x", ">=", 5))

    def test_range_containment(self):
        general = conjoin([pred("x", ">", 0), pred("x", "<", 100)])
        specific = conjoin([pred("x", ">", 10), pred("x", "<", 50)])
        assert self.checker.contains(general, specific)
        assert not self.checker.contains(specific, general)

    def test_equality_containment(self):
        assert self.checker.contains(pred("seg", "=", "Asia"),
                                     pred("seg", "=", "Asia"))
        assert not self.checker.contains(pred("seg", "=", "Asia"),
                                         pred("seg", "=", "Europe"))

    def test_equality_inside_range(self):
        assert self.checker.contains(pred("x", ">", 5), pred("x", "=", 10))
        assert not self.checker.contains(pred("x", ">", 5), pred("x", "=", 3))

    def test_unconstrained_view_contains_everything(self):
        assert self.checker.contains(None, pred("x", ">", 5))

    def test_query_looser_than_view_rejected(self):
        assert not self.checker.contains(pred("x", ">", 5), None)

    def test_multi_column(self):
        general = conjoin([pred("x", ">", 0), pred("y", "<", 10)])
        specific = conjoin([pred("x", ">", 5), pred("y", "<", 5)])
        assert self.checker.contains(general, specific)

    def test_unsupported_predicate_is_sound(self):
        weird = BinaryOp("=", ColumnRef("x"), ColumnRef("y"))
        assert not self.checker.contains(weird, pred("x", ">", 5))

    def test_compensation_returns_specific(self):
        compensation = self.checker.compensation(
            pred("x", ">", 5), pred("x", ">", 6))
        assert compensation == pred("x", ">", 6)

    def test_generalized_match_rewrites_filter_over_scan(self):
        scan = Scan("Sales", ("CustomerId", "Price"), "guid1")
        view_plan = Filter(scan, pred("CustomerId", ">", 5))
        query_plan = Filter(scan, pred("CustomerId", ">", 6))
        view_scan = ViewScan("sig", "path", scan.columns, rows=10)
        rewritten = generalized_match(query_plan, view_plan, view_scan)
        assert isinstance(rewritten, Filter)
        assert isinstance(rewritten.child, ViewScan)

    def test_generalized_match_rejects_different_streams(self):
        scan1 = Scan("Sales", ("CustomerId",), "guid1")
        scan2 = Scan("Sales", ("CustomerId",), "guid2")
        view_plan = Filter(scan1, pred("CustomerId", ">", 5))
        query_plan = Filter(scan2, pred("CustomerId", ">", 6))
        view_scan = ViewScan("sig", "path", scan1.columns, rows=10)
        assert generalized_match(query_plan, view_plan, view_scan) is None


def make_repo(records):
    repo = WorkloadRepository()
    by_job = {}
    for r in records:
        by_job.setdefault(r.job_id, []).append(r)
    for job_id, recs in by_job.items():
        repo.add_job(JobRecord(
            job_id=job_id, virtual_cluster="vc1",
            submit_time=recs[0].submit_time, template_id="t",
            pipeline_id="p", runtime_version="r1", input_datasets=(),
            subexpression_count=len(recs)), recs)
    return repo


def join_rec(job_id, strict, recurring, inputs, t=0.0, detail="hash"):
    return SubexpressionRecord(
        job_id=job_id, virtual_cluster="vc1", submit_time=t,
        template_id="t", pipeline_id="p", strict=strict,
        recurring=recurring, tag="tg", operator="Join", height=2,
        eligible=True, rows=10, size_bytes=80, work=500.0,
        input_datasets=inputs, detail=detail)


class TestJoinSets:
    def test_groups_by_input_set(self):
        repo = make_repo([
            join_rec("j1", "s1", "r1", ("A", "B")),
            join_rec("j2", "s2", "r2", ("A", "B")),
            join_rec("j3", "s3", "r3", ("A", "C")),
        ])
        opportunities = join_set_opportunities(repo)
        assert opportunities[0].inputs == ("A", "B")
        assert opportunities[0].occurrences == 2
        assert opportunities[0].distinct_variants == 2

    def test_generalization_gain(self):
        repo = make_repo([
            join_rec(f"j{i}", f"s{i % 2}", f"r{i % 2}", ("A", "B"))
            for i in range(6)])
        (opp,) = join_set_opportunities(repo)
        assert opp.occurrences == 6
        assert opp.distinct_variants == 2
        assert opp.generalization_gain == 4

    def test_single_input_joins_excluded(self):
        repo = make_repo([join_rec("j1", "s1", "r1", ("A",))])
        assert join_set_opportunities(repo) == []


class TestConcurrent:
    def test_concurrent_instances_counted(self):
        repo = make_repo([
            join_rec(f"j{i}", "s1", "r1", ("A", "B"), t=float(i * 10))
            for i in range(5)])
        (result,) = concurrent_joins(repo, overlap_horizon_seconds=100.0)
        assert result.concurrency == 5
        assert result.algorithm == "hash"

    def test_spread_instances_not_concurrent(self):
        repo = make_repo([
            join_rec(f"j{i}", "s1", "r1", ("A", "B"), t=float(i * 10000))
            for i in range(5)])
        assert concurrent_joins(repo, overlap_horizon_seconds=100.0) == []

    def test_histogram_buckets_by_algorithm(self):
        joins = concurrent_joins(make_repo(
            [join_rec(f"h{i}", "s1", "r1", ("A", "B"), t=float(i),
                      detail="hash") for i in range(3)]
            + [join_rec(f"m{i}", "s2", "r2", ("A", "C"), t=float(i),
                        detail="merge") for i in range(2)]),
            overlap_horizon_seconds=100.0)
        histogram = concurrency_histogram(joins, bucket_size=200)
        assert histogram["hash"] == {0: 1}
        assert histogram["merge"] == {0: 1}

    def test_pipelined_sharing_estimate(self):
        repo = make_repo([
            join_rec(f"j{i}", "s1", "r1", ("A", "B"), t=float(i))
            for i in range(4)])
        plan = estimate_pipelined_sharing(repo, overlap_horizon_seconds=100.0)
        assert plan.shared_instances == 1
        assert plan.duplicates_avoided == 3
        assert plan.work_avoided == pytest.approx(3 * 500.0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=100)
        items = [(i, f"v{i}") for i in range(100)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        for i in range(500):
            bloom.add(i)
        false_positives = sum(1 for i in range(500, 10500) if i in bloom)
        assert false_positives / 10000 < 0.05

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, false_positive_rate=1.5)

    def test_semi_join_reduce_keeps_all_matches(self):
        keys = (ColumnRef("k"),)
        build_rows = [dict(k=i) for i in range(0, 50, 2)]
        probe_rows = [dict(k=i) for i in range(50)]
        bloom = build_join_filter(build_rows, keys)
        reduced = semi_join_reduce(probe_rows, keys, bloom)
        surviving = {r["k"] for r in reduced}
        assert {r["k"] for r in build_rows} <= surviving

    def test_semi_join_reduce_drops_most_nonmatches(self):
        keys = (ColumnRef("k"),)
        bloom = build_join_filter([dict(k=1)], keys)
        reduced = semi_join_reduce([dict(k=i) for i in range(1000)],
                                   keys, bloom)
        assert len(reduced) < 100

    def test_catalog_hit_miss_accounting(self):
        catalog = BitVectorCatalog()
        bloom = BloomFilter(10)
        catalog.publish("sig", bloom)
        assert catalog.lookup("sig") is bloom
        assert catalog.lookup("other") is None
        assert catalog.hits == 1 and catalog.misses == 1

    def test_fill_ratio_monotone(self):
        bloom = BloomFilter(100)
        empty = bloom.fill_ratio()
        for i in range(50):
            bloom.add(i)
        assert bloom.fill_ratio() > empty
