"""Unit tests: stage graphs shrink under reuse (the container mechanism)."""

import pytest

from repro.catalog import schema_of
from repro.cluster import build_stage_graph
from repro.engine import ScopeEngine
from repro.optimizer import CardinalityEstimator
from repro.optimizer.context import Annotation
from repro.plan import PlanBuilder, normalize
from repro.optimizer.rules import apply_rewrites
from repro.signatures import enumerate_subexpressions
from repro.sql import parse


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 6, v=float(i)) for i in range(600)])
    eng.register_table(
        schema_of("D", [("k", "int"), ("n", "str")]),
        [dict(k=i, n=f"x{i}") for i in range(6)])
    return eng


SQL = "SELECT n, SUM(v) AS s FROM T JOIN D WHERE v > 5 GROUP BY n"


def annotate_join(engine):
    plan = normalize(apply_rewrites(
        PlanBuilder(engine.catalog).build(parse(SQL))))
    subs = enumerate_subexpressions(plan, engine.signature_salt)
    join = max((s for s in subs if s.operator == "Join"),
               key=lambda s: s.height)
    engine.insights.publish([Annotation(join.recurring, join.tag)])


def graph_for(engine, reuse, now):
    compiled = engine.compile(SQL, reuse_enabled=reuse, now=now)
    run = engine.execute(compiled, now=now)
    estimator = CardinalityEstimator(engine.catalog, history=None,
                                     overestimate=2.0,
                                     salt=engine.signature_salt)
    return build_stage_graph(compiled.plan, run.result, estimator,
                             rows_per_partition=15, max_partitions=96)


def test_reusing_job_has_fewer_smaller_stages(engine):
    annotate_join(engine)
    builder_graph = graph_for(engine, reuse=True, now=0.0)
    reuser_graph = graph_for(engine, reuse=True, now=1.0)
    baseline_graph = graph_for(engine, reuse=False, now=2.0)

    # The builder has an extra spool-writer stage vs the baseline.
    assert any(s.is_spool_writer for s in builder_graph.stages)
    assert len(builder_graph.stages) == len(baseline_graph.stages) + 1
    # The reuser collapses the join pipeline into a view scan.  (Note:
    # total *partitions* may go either way at this scale -- the accurate
    # ViewScan row count can exceed a badly under-estimated join -- but
    # stage count and actual work always shrink.)
    assert not any(s.is_spool_writer for s in reuser_graph.stages)
    assert len(reuser_graph.stages) < len(baseline_graph.stages)
    assert reuser_graph.total_work < baseline_graph.total_work
    assert reuser_graph.critical_path_work() < \
        baseline_graph.critical_path_work()


def test_viewscan_stage_partitions_follow_actual_rows(engine):
    annotate_join(engine)
    graph_for(engine, reuse=True, now=0.0)   # materialize
    reuser_graph = graph_for(engine, reuse=True, now=1.0)
    scan_stage = next(s for s in reuser_graph.stages
                      if "ViewScan" in s.operators)
    # ~594 filtered join rows at 15 rows/partition: exact, not inflated.
    assert scan_stage.partitions == pytest.approx(
        -(-scan_stage.actual_rows // 15), abs=1)
