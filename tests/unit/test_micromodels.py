"""Unit tests for per-template micro-models (Section 5.2)."""

import pytest

from repro.cluster import JobTelemetry
from repro.telemetry.micromodels import (
    MicroModelBank,
    evaluate_micromodels,
    fit_micromodels,
)


def job(job_id, input_rows, processing, vc="vc1"):
    t = JobTelemetry(job_id=job_id, virtual_cluster=vc, submit_time=0.0)
    t.input_rows = input_rows
    t.processing_time = processing
    return t


def linear_history(template, n=6, base=50.0, slope=2.0, start=0):
    telemetry = []
    template_of = {}
    for i in range(n):
        rows = 100 + i * 50
        job_id = f"{template}-{start + i}"
        telemetry.append(job(job_id, rows, base + slope * rows))
        template_of[job_id] = template
    return telemetry, template_of


class TestFitting:
    def test_recovers_linear_relationship(self):
        telemetry, template_of = linear_history("t1")
        bank = fit_micromodels(telemetry, template_of)
        model = bank.models["t1"]
        assert model.slope == pytest.approx(2.0, rel=0.01)
        assert model.base == pytest.approx(50.0, rel=0.05)
        assert model.predict(500) == pytest.approx(1050.0, rel=0.02)

    def test_robust_to_one_straggler(self):
        telemetry, template_of = linear_history("t1", n=7)
        straggler = job("t1-s", 200, 100000.0)
        template_of["t1-s"] = "t1"
        bank = fit_micromodels(telemetry + [straggler], template_of)
        assert bank.models["t1"].predict(300) < 2000.0

    def test_constant_input_yields_flat_model(self):
        telemetry = [job(f"j{i}", 100, 500.0 + i) for i in range(5)]
        template_of = {f"j{i}": "t" for i in range(5)}
        bank = fit_micromodels(telemetry, template_of)
        model = bank.models["t"]
        assert model.slope == 0.0
        assert model.predict(100) == pytest.approx(502.0)

    def test_min_observations_threshold(self):
        telemetry, template_of = linear_history("t1", n=2)
        bank = fit_micromodels(telemetry, template_of,
                               min_observations=3)
        assert len(bank) == 0

    def test_one_model_per_template(self):
        t1, m1 = linear_history("t1", slope=1.0)
        t2, m2 = linear_history("t2", slope=5.0, start=100)
        bank = fit_micromodels(t1 + t2, {**m1, **m2})
        assert len(bank) == 2
        assert bank.models["t2"].slope > bank.models["t1"].slope

    def test_prediction_never_negative(self):
        telemetry, template_of = linear_history("t1", base=-500.0,
                                                slope=0.1)
        bank = fit_micromodels(telemetry, template_of)
        assert bank.predict("t1", 0) == 0.0

    def test_unknown_template_predicts_none(self):
        bank = MicroModelBank(metric="processing_time")
        assert bank.predict("nope", 100) is None


class TestEvaluation:
    def test_high_accuracy_on_recurring_workload(self):
        train, template_of = linear_history("t1", n=8)
        test, test_templates = linear_history("t1", n=4, start=50)
        bank = fit_micromodels(train, template_of)
        quality = evaluate_micromodels(bank, test,
                                       {**template_of, **test_templates})
        assert quality.evaluated == 4
        assert quality.median_relative_error < 0.05
        assert quality.within_20_percent == 1.0

    def test_evaluation_skips_unknown_templates(self):
        train, template_of = linear_history("t1")
        bank = fit_micromodels(train, template_of)
        quality = evaluate_micromodels(bank, [job("x", 100, 10.0)], {})
        assert quality.evaluated == 0

    def test_end_to_end_on_simulated_telemetry(self):
        """Fit on the first days of a simulation, evaluate on the rest."""
        from repro.core import SimulationConfig, WorkloadSimulation
        from repro.workload import generate_workload

        workload = generate_workload(seed=5, virtual_clusters=2,
                                     templates_per_vc=6, adhoc_per_day=0)
        config = SimulationConfig(days=4, cloudviews_enabled=False)
        simulation = WorkloadSimulation(workload, config)
        report = simulation.run()
        template_of = {j.job_id: j.template_id
                       for j in report.repository.jobs}
        split = 2 * 86400.0
        train = [t for t in report.telemetry if t.submit_time < split]
        test = [t for t in report.telemetry if t.submit_time >= split]
        bank = fit_micromodels(train, template_of,
                               metric="processing_time",
                               min_observations=2)
        quality = evaluate_micromodels(bank, test, template_of)
        assert quality.evaluated > 0
        # Recurring jobs are highly predictable per template.
        assert quality.median_relative_error < 0.25
