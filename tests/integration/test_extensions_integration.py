"""Integration tests for checkpoint/restart, sampling, and SparkCruise."""

import pytest

from repro.catalog import schema_of
from repro.engine import ScopeEngine
from repro.extensions import (
    CheckpointManager,
    FailureModel,
    QueryEventListener,
    SampledViewCatalog,
    format_insights,
    run_workload_analysis,
    workload_insights_report,
)
from repro.selection import SelectionPolicy


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("Events", [("UserId", "int"), ("Value", "float"),
                             ("Day", "str")]),
        [dict(UserId=i % 9, Value=float(i), Day="d0") for i in range(120)])
    eng.register_table(
        schema_of("Users", [("UserId", "int"), ("Segment", "str")]),
        [dict(UserId=i, Segment="Asia" if i % 3 else "Europe")
         for i in range(9)])
    return eng


SQL = ("SELECT UserId, SUM(Value) AS total FROM Events JOIN Users "
       "WHERE Segment = 'Asia' GROUP BY UserId")


class TestCheckpointRestart:
    def test_checkpoint_inserted_before_risky_operator(self, engine):
        manager = CheckpointManager(engine)
        compiled = manager.compile_with_checkpoints(SQL)
        assert compiled.built_views >= 1

    def test_restart_reuses_checkpoint(self, engine):
        manager = CheckpointManager(engine)
        compiled = manager.compile_with_checkpoints(SQL)
        run, sealed = manager.run_with_failure(compiled, now=0.0)
        assert run is None and sealed
        resubmitted = manager.resubmit(SQL, now=10.0)
        assert resubmitted.compiled.reused_views >= 1

    def test_restart_result_matches_clean_run(self, engine):
        manager = CheckpointManager(engine)
        compiled = manager.compile_with_checkpoints(SQL)
        manager.run_with_failure(compiled, now=0.0)
        recovered = manager.resubmit(SQL, now=10.0)
        clean = engine.run_sql(SQL, reuse_enabled=False, now=10.0)
        assert sorted(map(repr, recovered.rows)) == \
            sorted(map(repr, clean.rows))

    def test_checkpoints_do_not_leak_into_later_annotations(self, engine):
        manager = CheckpointManager(engine)
        manager.compile_with_checkpoints(SQL)
        # The temporary checkpoint annotations were rolled back.
        assert engine.insights.annotation_count() == 0

    def test_failure_model_learns(self):
        model = FailureModel()
        assert model.is_risky("GroupBy")       # default heuristic
        assert not model.is_risky("Filter")
        model.record_failure("Filter", weight=0.2)
        assert model.is_risky("Filter")
        # Once history exists, defaults no longer apply.
        assert not model.is_risky("GroupBy")

    def test_max_checkpoints_respected(self, engine):
        manager = CheckpointManager(engine, max_checkpoints_per_job=1)
        compiled = manager.compile_with_checkpoints(SQL)
        assert compiled.built_views <= 1


class TestSampling:
    def _materialize(self, engine):
        """Materialize checkpoints; return the join view (carries Value)."""
        manager = CheckpointManager(engine)
        compiled = manager.compile_with_checkpoints(SQL)
        run = engine.execute(compiled, now=0.0)
        for signature in run.sealed_views:
            view = engine.view_store.lookup(signature, now=0.5)
            if view is not None and "Value" in view.schema:
                return signature
        return run.sealed_views[0]

    def test_sampled_view_smaller(self, engine):
        signature = self._materialize(engine)
        catalog = SampledViewCatalog(engine.store, engine.view_store)
        sample = catalog.create(signature, rate=0.5, now=1.0)
        assert 0 < sample.rows < sample.base_rows or sample.base_rows <= 2

    def test_sample_deterministic(self, engine):
        signature = self._materialize(engine)
        catalog = SampledViewCatalog(engine.store, engine.view_store)
        a = catalog.create(signature, rate=0.5, now=1.0, seed=3)
        b = catalog.create(signature, rate=0.5, now=1.0, seed=3)
        assert catalog.rows(a) == catalog.rows(b)

    def test_approximate_count_scales(self, engine):
        signature = self._materialize(engine)
        catalog = SampledViewCatalog(engine.store, engine.view_store)
        sample = catalog.create(signature, rate=0.6, now=1.0)
        estimate = catalog.approximate_count(sample)
        assert estimate == pytest.approx(sample.base_rows, rel=0.0001) \
            or estimate >= 0

    def test_approximate_sum_close_for_full_rate(self, engine):
        signature = self._materialize(engine)
        catalog = SampledViewCatalog(engine.store, engine.view_store)
        sample = catalog.create(signature, rate=1.0, now=1.0)
        view = engine.view_store.lookup(signature, now=1.0)
        # The checkpoint view materializes the join below the aggregation,
        # so its rows carry the raw Value column.
        exact = sum(r["Value"] for r in engine.store.get(view.path))
        assert catalog.approximate_sum(sample, "Value") == pytest.approx(exact)

    def test_invalid_rate_rejected(self, engine):
        signature = self._materialize(engine)
        catalog = SampledViewCatalog(engine.store, engine.view_store)
        with pytest.raises(ValueError):
            catalog.create(signature, rate=0.0, now=1.0)

    def test_missing_view_rejected(self, engine):
        from repro.common.errors import StorageError
        catalog = SampledViewCatalog(engine.store, engine.view_store)
        with pytest.raises(StorageError):
            catalog.create("nope", rate=0.5, now=1.0)


class TestSparkCruise:
    def test_listener_builds_repository(self, engine):
        listener = QueryEventListener(engine)
        for i in range(3):
            run = engine.run_sql(SQL, reuse_enabled=False, now=float(i))
            listener.on_query_end(run, now=float(i))
        assert listener.repository.total_jobs() == 3
        assert listener.repository.repeated_fraction() > 0.5

    def test_user_scheduled_analysis_enables_reuse(self, engine):
        listener = QueryEventListener(engine)
        for i in range(3):
            run = engine.run_sql(SQL, reuse_enabled=False, now=float(i))
            listener.on_query_end(run, now=float(i))
        result = run_workload_analysis(
            listener, SelectionPolicy(min_reuses_per_epoch=0.0))
        assert result.selected
        builder = engine.run_sql(SQL, now=10.0)
        reuser = engine.run_sql(SQL, now=11.0)
        assert builder.compiled.built_views >= 1
        assert reuser.compiled.reused_views >= 1

    def test_insights_report_shape(self, engine):
        listener = QueryEventListener(engine)
        for i in range(4):
            run = engine.run_sql(SQL, reuse_enabled=False, now=float(i))
            listener.on_query_end(run, now=float(i))
        report = workload_insights_report(listener.repository)
        assert report["jobs"] == 4
        assert 0.0 <= report["repeated_subexpression_fraction"] <= 1.0
        assert report["reuse_candidates"] >= 1
        text = format_insights(report)
        assert "Workload Insights" in text
        assert "repeated subexpressions" in text
