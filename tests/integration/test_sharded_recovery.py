"""Integration tests: per-shard WAL durability and merge-on-read recovery.

PR-5's kill-and-recover guarantee, re-proved against the sharded
deployment: every catalog mutation lands in the owning shard's WAL
(flushed per append), so SIGKILLing every worker process loses nothing
acknowledged, and :func:`merged_offline_recovery` rebuilds the *global*
catalog digest from the ``shard-NN`` journals -- for any shard count,
including the classic single-journal layout it falls back to.
"""

import os

import pytest

from repro.api import Session
from repro.catalog import schema_of
from repro.config import SessionConfig
from repro.core import MultiLevelControls
from repro.lifecycle import LifecycleConfig
from repro.lifecycle.lineage import LineageRegistry
from repro.selection import SelectionPolicy
from repro.shard import merged_offline_recovery
from repro.storage.views import ViewStore

SQL = ("SELECT Day, SUM(Value) AS total FROM Events "
       "WHERE Day = @run GROUP BY Day")


def make_session(journal_dir, shards):
    controls = MultiLevelControls()
    controls.enable_vc("vc1")
    return Session(
        config=SessionConfig(shards=shards),
        controls=controls,
        selection_algorithm="bigsubs",
        policy=SelectionPolicy(storage_budget_bytes=10_000_000,
                               min_reuses_per_epoch=0.0),
        lifecycle=LifecycleConfig(journal_dir=journal_dir),
    )


def build_state(session):
    """Two feedback-loop rounds: builds views, seals them, reuses one."""
    session.register_table(
        schema_of("Events", [("UserId", "int"), ("Day", "str"),
                             ("Value", "float")]),
        [dict(UserId=i % 7, Day=f"d{i % 2}", Value=float(i))
         for i in range(40)])
    for _ in range(3):
        for day in ("d0", "d1"):
            session.run(SQL, params={"run": day}, virtual_cluster="vc1",
                        template_id=f"t-{day}")
        session.analyze_and_publish()
    assert session.views_created > 0


class TestShardedKillAndRecover:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sigkill_then_merged_wal_replay_reproduces_digest(
            self, tmp_path, shards):
        journal_dir = str(tmp_path / "journal")
        session = make_session(journal_dir, shards)
        try:
            build_state(session)
            digest = session.catalog_digest()
            counters = session.engine.view_store.counters()
            # The journal really is partitioned: one WAL dir per shard.
            layout = sorted(name for name in os.listdir(journal_dir)
                            if name.startswith("shard-"))
            assert layout == [f"shard-{i:02d}" for i in range(shards)]
            # Crash: SIGKILL every worker.  No snapshot, no goodbye --
            # the per-shard WALs are all that survives.
            for shard_id in range(shards):
                session.supervisor.kill(shard_id)
            store = ViewStore()
            report = merged_offline_recovery(journal_dir, store,
                                             LineageRegistry())
            assert store.catalog_digest() == digest
            assert store.counters() == counters
            assert report.wal_ops > 0
        finally:
            session.close()

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_second_session_recovers_and_keeps_reusing(self, tmp_path,
                                                       shards):
        journal_dir = str(tmp_path / "journal")
        first = make_session(journal_dir, shards)
        try:
            build_state(first)
            digest = first.catalog_digest()
        finally:
            first.close()
        second = make_session(journal_dir, shards)
        try:
            assert second.catalog_digest() == digest
            assert second.lifecycle.last_recovery.recovered_anything
        finally:
            second.close()

    def test_offline_merge_falls_back_to_classic_layout(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        session = make_session(journal_dir, shards=0)
        try:
            build_state(session)
            digest = session.catalog_digest()
        finally:
            session.close()
        assert not any(name.startswith("shard-")
                       for name in os.listdir(journal_dir))
        store = ViewStore()
        merged_offline_recovery(journal_dir, store, LineageRegistry())
        assert store.catalog_digest() == digest
