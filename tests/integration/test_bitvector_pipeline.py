"""Integration tests: bit-vector filter reuse and pipeline optimization."""

import pytest

from repro.catalog import schema_of
from repro.engine import ScopeEngine
from repro.extensions import (
    BitVectorCatalog,
    plan_semi_join_reductions,
    publish_filters_from_run,
    suggest_physical_designs,
)


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("Facts", [("k", "int"), ("v", "float"), ("tag", "str")]),
        [dict(k=i % 100, v=float(i), tag=f"t{i % 4}") for i in range(500)])
    eng.register_table(
        schema_of("Dims", [("k", "int"), ("label", "str")]),
        # Only even keys exist on the build side: half the probe rows are
        # guaranteed non-joining and removable by the filter.
        [dict(k=i * 2, label=f"l{i}") for i in range(25)])
    return eng


JOIN_SQL = ("SELECT label, SUM(v) AS s FROM Facts JOIN Dims "
            "GROUP BY label")


class TestBitVectorReuse:
    def test_publish_from_first_run(self, engine):
        catalog = BitVectorCatalog()
        run = engine.run_sql(JOIN_SQL, reuse_enabled=False)
        published = publish_filters_from_run(
            run, catalog, engine.store, salt=engine.signature_salt)
        assert published == 1

    def test_subsequent_query_reduces_probe_side(self, engine):
        catalog = BitVectorCatalog()
        run = engine.run_sql(JOIN_SQL, reuse_enabled=False)
        publish_filters_from_run(run, catalog, engine.store,
                                 salt=engine.signature_salt)
        compiled = engine.compile(JOIN_SQL, reuse_enabled=False)
        reductions = plan_semi_join_reductions(
            compiled.plan, catalog, engine.store,
            salt=engine.signature_salt)
        assert len(reductions) == 1
        reduction = reductions[0]
        # Odd keys (roughly half the probe rows) cannot join.
        assert reduction["rows_eliminated"] > reduction["probe_rows"] * 0.3
        assert catalog.hits == 1

    def test_semi_join_reduction_is_safe(self, engine):
        """Rows surviving the filter produce the same join result."""
        from repro.executor.executor import _hash_join
        from repro.extensions import build_join_filter, semi_join_reduce
        from repro.plan.logical import Join

        compiled = engine.compile(JOIN_SQL, reuse_enabled=False)
        join = next(n for n in compiled.plan.walk() if isinstance(n, Join))
        from repro.executor import Executor
        executor = Executor(engine.store)
        probe = executor.execute(join.left).rows
        build = executor.execute(join.right).rows
        bloom = build_join_filter(build, join.right_keys)
        reduced = semi_join_reduce(probe, join.left_keys, bloom)
        full = _hash_join(join, probe, build)
        filtered = _hash_join(join, reduced, build)
        assert sorted(map(repr, full)) == sorted(map(repr, filtered))

    def test_filter_stale_after_bulk_update(self, engine):
        catalog = BitVectorCatalog()
        run = engine.run_sql(JOIN_SQL, reuse_enabled=False)
        publish_filters_from_run(run, catalog, engine.store,
                                 salt=engine.signature_salt)
        engine.bulk_update("Dims", [dict(k=i * 3, label=f"x{i}")
                                    for i in range(20)])
        compiled = engine.compile(JOIN_SQL, reuse_enabled=False)
        reductions = plan_semi_join_reductions(
            compiled.plan, catalog, engine.store,
            salt=engine.signature_salt)
        # The build-side signature changed: no stale filter is applied.
        assert reductions == []
        assert catalog.misses >= 1

    def test_duplicate_publication_skipped(self, engine):
        catalog = BitVectorCatalog()
        run = engine.run_sql(JOIN_SQL, reuse_enabled=False)
        assert publish_filters_from_run(run, catalog, engine.store) == 1
        run2 = engine.run_sql(JOIN_SQL, reuse_enabled=False)
        assert publish_filters_from_run(run2, catalog, engine.store) == 0


class TestPipelineOptimization:
    def compile_all(self, engine, queries):
        return [engine.compile(sql, reuse_enabled=False).plan
                for sql in queries]

    def test_suggests_dominant_join_key(self, engine):
        plans = self.compile_all(engine, [
            JOIN_SQL,
            "SELECT label, COUNT(*) AS n FROM Facts JOIN Dims GROUP BY label",
            "SELECT tag, COUNT(*) AS n FROM Facts WHERE v > 10 GROUP BY tag",
        ])
        suggestions = suggest_physical_designs(plans)
        by_dataset = {s.dataset: s for s in suggestions}
        assert by_dataset["Facts"].partition_key == "k"
        assert by_dataset["Dims"].partition_key == "k"
        assert by_dataset["Facts"].consumers_served == 2

    def test_weighting_by_recurrence(self, engine):
        engine.register_table(
            schema_of("Other", [("tag", "str"), ("w", "int")]),
            [dict(tag=f"t{i % 4}", w=i) for i in range(16)])
        plans = self.compile_all(engine, [
            JOIN_SQL,                                        # joins on k
            "SELECT w, COUNT(*) AS n FROM Facts JOIN Other "
            "GROUP BY w",                                    # joins on tag
        ])
        # The tag-join consumer recurs 10x as often: tag should win.
        suggestions = suggest_physical_designs(plans, weights=[1.0, 10.0])
        facts = next(s for s in suggestions if s.dataset == "Facts")
        assert facts.partition_key == "tag"

    def test_coverage_fraction(self, engine):
        plans = self.compile_all(engine, [JOIN_SQL])
        (dims,) = [s for s in suggest_physical_designs(plans)
                   if s.dataset == "Dims"]
        assert dims.coverage == 1.0

    def test_no_joins_no_suggestions(self, engine):
        plans = self.compile_all(engine, [
            "SELECT tag, COUNT(*) AS n FROM Facts GROUP BY tag"])
        assert suggest_physical_designs(plans) == []
