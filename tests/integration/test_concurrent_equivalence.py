"""Worker-count invariance of the wave-parallel simulation.

The acceptance bar of the concurrent frontend: running the cooking
workload with 8 scheduler threads must leave the system in a
byte-identical state to running it with 1 -- same view catalog digest,
same reuse counts, same per-job outcomes, same workload repository.
Only wall-clock time may differ.
"""

import pytest

from repro.scheduler import ConcurrentSimulation, ConcurrentSimulationConfig
from repro.workload.generator import generate_workload


def run_simulation(workers, days=3, seed=7):
    workload = generate_workload(seed=seed)
    simulation = ConcurrentSimulation(
        workload,
        ConcurrentSimulationConfig(days=days, workers=workers))
    return simulation.run()


@pytest.fixture(scope="module")
def reports():
    return {workers: run_simulation(workers) for workers in (1, 8)}


def job_outcome(result):
    """The schedule-invariant slice of one job's result.

    ``compile_latency`` is excluded: which concurrent job pays a serving
    cache miss depends on arrival order inside a wave, and the invariance
    guarantee covers reuse decisions and results, not latency accounting.
    """
    return (result.job_id, result.ok, result.degraded,
            result.virtual_cluster, result.views_built,
            result.views_reused, sorted(map(repr, result.rows)))


class TestWorkerCountInvariance:
    def test_catalog_digest_identical(self, reports):
        assert reports[1].catalog_digest == reports[8].catalog_digest

    def test_reuse_counts_identical(self, reports):
        assert reports[1].views_created == reports[8].views_created
        assert reports[1].views_reused == reports[8].views_reused
        assert reports[1].views_created > 0
        assert reports[1].views_reused > 0

    def test_every_job_outcome_identical(self, reports):
        one = [job_outcome(r) for r in reports[1].results]
        eight = [job_outcome(r) for r in reports[8].results]
        assert one == eight
        assert len(one) > 50

    def test_no_failures_in_either_run(self, reports):
        assert reports[1].failures == 0
        assert reports[8].failures == 0

    def test_workload_repository_identical(self, reports):
        def rows(report):
            return [(j.job_id, j.template_id, j.submit_time,
                     j.subexpression_count)
                    for j in report.repository.jobs]
        assert rows(reports[1]) == rows(reports[8])

    def test_selection_epochs_identical(self, reports):
        def epochs(report):
            return [sorted(c.recurring for c in s.selected)
                    for s in report.selections]
        assert epochs(reports[1]) == epochs(reports[8])
