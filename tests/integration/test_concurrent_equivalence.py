"""Worker- and shard-count invariance of the wave-parallel simulation.

The acceptance bar of the concurrent frontend: running the cooking
workload with 8 scheduler threads must leave the system in a
byte-identical state to running it with 1 -- same view catalog digest,
same reuse counts, same per-job outcomes, same workload repository.
Only wall-clock time may differ.

The sharded insights deployment extends the same bar across process
counts: the multi-process service behind the router must be
indistinguishable from the in-process one for any ``shards`` value,
because routing partitions by signature hash and the router
re-accumulates per-tag serving charges in the caller's tag order.
"""

import pytest

from repro.scheduler import ConcurrentSimulation, ConcurrentSimulationConfig
from repro.workload.generator import generate_workload

BASELINE = (1, 0)
#: (workers, shards) deployments that must all converge on the baseline.
VARIANTS = ((8, 0), (2, 1), (2, 2), (4, 4))


def run_simulation(workers, shards=0, days=3, seed=7):
    workload = generate_workload(seed=seed)
    simulation = ConcurrentSimulation(
        workload,
        ConcurrentSimulationConfig(days=days, workers=workers,
                                   shards=shards))
    return simulation.run()


@pytest.fixture(scope="module")
def reports():
    return {(workers, shards): run_simulation(workers, shards)
            for workers, shards in (BASELINE,) + VARIANTS}


def job_outcome(result):
    """The schedule-invariant slice of one job's result.

    ``compile_latency`` is excluded: which concurrent job pays a serving
    cache miss depends on arrival order inside a wave, and the invariance
    guarantee covers reuse decisions and results, not latency accounting.
    """
    return (result.job_id, result.ok, result.degraded,
            result.virtual_cluster, result.views_built,
            result.views_reused, sorted(map(repr, result.rows)))


class TestDeploymentInvariance:
    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: f"w{v[0]}s{v[1]}")
    def test_catalog_digest_identical(self, reports, variant):
        assert (reports[variant].catalog_digest
                == reports[BASELINE].catalog_digest)

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: f"w{v[0]}s{v[1]}")
    def test_reuse_counts_identical(self, reports, variant):
        assert (reports[variant].views_created
                == reports[BASELINE].views_created)
        assert (reports[variant].views_reused
                == reports[BASELINE].views_reused)
        assert reports[BASELINE].views_created > 0
        assert reports[BASELINE].views_reused > 0

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: f"w{v[0]}s{v[1]}")
    def test_every_job_outcome_identical(self, reports, variant):
        base = [job_outcome(r) for r in reports[BASELINE].results]
        other = [job_outcome(r) for r in reports[variant].results]
        assert base == other
        assert len(base) > 50

    def test_no_failures_in_any_run(self, reports):
        for report in reports.values():
            assert report.failures == 0

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: f"w{v[0]}s{v[1]}")
    def test_workload_repository_identical(self, reports, variant):
        def rows(report):
            return [(j.job_id, j.template_id, j.submit_time,
                     j.subexpression_count)
                    for j in report.repository.jobs]
        assert rows(reports[BASELINE]) == rows(reports[variant])

    @pytest.mark.parametrize("variant", VARIANTS,
                             ids=lambda v: f"w{v[0]}s{v[1]}")
    def test_selection_epochs_identical(self, reports, variant):
        def epochs(report):
            return [sorted(c.recurring for c in s.selected)
                    for s in report.selections]
        assert epochs(reports[BASELINE]) == epochs(reports[variant])

    def test_sharded_runs_report_per_shard_stats(self, reports):
        for (_, shards), report in reports.items():
            if shards == 0:
                assert report.shard_stats is None
                continue
            assert len(report.shard_stats) == shards
            assert sum(report.shard_busy_seconds) > 0.0
            assert sum(s["fetch_requests"]
                       for s in report.shard_stats) > 0
