"""Integration tests for shared (pipelined) batch execution (Section 5.4)."""

import pytest

from repro.catalog import schema_of
from repro.engine import ScopeEngine
from repro.extensions import SharedBatchExecutor


@pytest.fixture
def engine():
    eng = ScopeEngine()
    eng.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 6, v=float(i)) for i in range(200)])
    eng.register_table(
        schema_of("D", [("k", "int"), ("n", "str")]),
        [dict(k=i, n=f"x{i}") for i in range(6)])
    return eng


Q_SUM = "SELECT n, SUM(v) AS s FROM T JOIN D WHERE v > 10 GROUP BY n"
Q_COUNT = "SELECT n, COUNT(*) AS c FROM T JOIN D WHERE v > 10 GROUP BY n"
Q_AVG = "SELECT k, AVG(v) AS a FROM T WHERE v > 10 GROUP BY k"
Q_OTHER = "SELECT k, MAX(v) AS m FROM T WHERE v < 3 GROUP BY k"


def compile_batch(engine, queries):
    return [engine.compile(q, reuse_enabled=False) for q in queries]


class TestSharedBatch:
    def test_later_jobs_pipeline_common_fragments(self, engine):
        batch = SharedBatchExecutor(engine)
        results, stats = batch.execute_batch(
            compile_batch(engine, [Q_SUM, Q_COUNT, Q_AVG]))
        assert results[0].shared_hits == 0   # first computes everything
        assert results[1].shared_hits >= 1   # shares the join fragment
        assert results[2].shared_hits >= 1   # shares the filter fragment
        assert stats.fragments_shared >= 2
        assert stats.work_avoided > 0
        assert 0.0 < stats.sharing_fraction < 1.0

    def test_results_identical_to_isolated_execution(self, engine):
        batch = SharedBatchExecutor(engine)
        queries = [Q_SUM, Q_COUNT, Q_AVG, Q_OTHER]
        results, _ = batch.execute_batch(compile_batch(engine, queries))
        for result, sql in zip(results, queries):
            clean = engine.run_sql(sql, reuse_enabled=False)
            assert sorted(map(repr, result.rows)) == \
                sorted(map(repr, clean.rows)), sql

    def test_unrelated_queries_share_nothing(self, engine):
        batch = SharedBatchExecutor(engine)
        results, stats = batch.execute_batch(
            compile_batch(engine, [Q_SUM, Q_OTHER]))
        assert results[1].shared_hits == 0
        assert stats.fragments_shared == 0

    def test_identical_queries_share_everything_shareable(self, engine):
        batch = SharedBatchExecutor(engine)
        results, stats = batch.execute_batch(
            compile_batch(engine, [Q_SUM, Q_SUM]))
        assert results[1].shared_hits == 1  # one maximal shared subtree
        # The second job did essentially no work below the memo hit.
        assert stats.sharing_fraction > 0.3

    def test_memo_does_not_leak_across_batches(self, engine):
        batch = SharedBatchExecutor(engine)
        batch.execute_batch(compile_batch(engine, [Q_SUM]))
        results, stats = batch.execute_batch(compile_batch(engine, [Q_SUM]))
        assert results[0].shared_hits == 0  # fresh batch, fresh memo

    def test_nondeterministic_udo_reruns_every_time(self, engine):
        """The ineligible UDO subtree is recomputed per job; only the
        deterministic fragment below it may be pipelined."""
        invocations = []

        def stamped(rows):
            invocations.append(len(rows))
            return rows

        engine.executor.udos.register("Stamp", stamped)
        sql = ("SELECT k, SUM(v) AS s FROM T GROUP BY k "
               "PROCESS USING Stamp NONDETERMINISTIC")
        batch = SharedBatchExecutor(engine)
        batch.execute_batch(compile_batch(engine, [sql, sql]))
        assert len(invocations) == 2  # the UDO itself was never shared

    def test_sharing_interacts_with_materialized_views(self, engine):
        """Batch sharing composes with ordinary CloudViews compilation."""
        from repro.optimizer.context import Annotation
        from repro.plan import PlanBuilder, normalize
        from repro.optimizer.rules import apply_rewrites
        from repro.signatures import enumerate_subexpressions
        from repro.sql import parse

        plan = normalize(apply_rewrites(
            PlanBuilder(engine.catalog).build(parse(Q_SUM))))
        subs = enumerate_subexpressions(plan, engine.signature_salt)
        join = max((s for s in subs if s.operator == "Join"),
                   key=lambda s: s.height)
        engine.insights.publish([Annotation(join.recurring, join.tag)])
        producer = engine.run_sql(Q_SUM)          # materializes the join
        assert producer.sealed_views

        compiled = engine.compile(Q_COUNT, now=1.0)  # reuses the view
        assert compiled.reused_views == 1
        batch = SharedBatchExecutor(engine)
        results, _ = batch.execute_batch([compiled])
        clean = engine.run_sql(Q_COUNT, reuse_enabled=False, now=2.0)
        assert sorted(map(repr, results[0].rows)) == \
            sorted(map(repr, clean.rows))
