"""Integration test: the query monitor attached to a full simulation."""

from repro.core import SimulationConfig, WorkloadSimulation
from repro.engine import QueryMonitor
from repro.workload import generate_workload


def test_monitor_surfaces_reuse_in_simulation():
    workload = generate_workload(seed=7, virtual_clusters=2,
                                 templates_per_vc=10, adhoc_per_day=0)
    monitor = QueryMonitor()
    config = SimulationConfig(days=4, cloudviews_enabled=True)
    report = WorkloadSimulation(workload, config, monitor=monitor).run()

    assert len(monitor.jobs()) == len(report.telemetry)
    touched = monitor.touched_jobs()
    assert touched  # some jobs built or reused views
    # Every reuse the telemetry saw is visible in the monitor.
    telemetry_reuses = sum(t.views_reused for t in report.telemetry)
    monitor_reuses = sum(j.views_reused for j in monitor.jobs())
    assert monitor_reuses == telemetry_reuses
    # The drill-down renders CloudView markers for a reusing job.
    reuser = next(j for j in touched if j.views_reused > 0)
    drilldown = monitor.render_job(reuser.job_id)
    assert "reused CloudView" in drilldown
    summary = monitor.render_summary()
    assert reuser.job_id in summary
