"""Acceptance tests for the flight recorder riding a full co-simulation.

The ISSUE's bar: a two-day :class:`WorkloadSimulation` with the recorder
attached must produce (a) a metrics dump with insights-latency histograms
and view lifecycle counters, (b) a per-job trace for a reusing job that
nests compile -> insights fetch -> view match, and (c) a structured event
log that replays to the same counter totals — while a recorder-disabled
run stays behaviourally identical to an uninstrumented one.
"""

import dataclasses

import pytest

from repro.core import SimulationConfig, WorkloadSimulation
from repro.obs import EventLog, FlightRecorder, load_capture, replay_counters
from repro.workload import generate_workload


def small_workload(seed=7):
    return generate_workload(seed=seed, virtual_clusters=2,
                             templates_per_vc=10, adhoc_per_day=2)


@pytest.fixture(scope="module")
def recorded():
    recorder = FlightRecorder()
    config = SimulationConfig(days=2, cloudviews_enabled=True)
    report = WorkloadSimulation(small_workload(), config,
                                recorder=recorder).run()
    return recorder, report


class TestMetricsDump:
    def test_insights_latency_histogram_present(self, recorded, tmp_path):
        recorder, _ = recorded
        recorder.dump(str(tmp_path))
        capture = load_capture(str(tmp_path))
        latency = capture["metrics"]["histograms"]["insights.fetch.latency"]
        assert latency["count"] > 0
        assert latency["p50"] > 0.0
        assert latency["p99"] >= latency["p50"]

    def test_view_lifecycle_counters(self, recorded):
        recorder, report = recorded
        counters = recorder.metrics.counters
        assert counters["views.match.hits"] == report.views_reused
        assert counters["events.view.created"] == report.views_created
        assert counters["events.view.sealed"] == report.views_created
        assert counters["engine.jobs.compiled"] == len(report.telemetry)

    def test_cluster_metrics_follow_telemetry(self, recorded):
        recorder, report = recorded
        assert (recorder.metrics.counter("cluster.jobs.completed")
                == len(report.telemetry))
        histogram = recorder.metrics.histogram("cluster.job.latency")
        assert histogram.count == len(report.telemetry)


class TestJobTrace:
    def test_reusing_job_trace_nests_compile_fetch_match(self, recorded):
        recorder, report = recorded
        reuser = next(t for t in report.telemetry if t.views_reused > 0)
        spans = recorder.tracer.trace(reuser.job_id)
        by_name = {s.name: s for s in spans}
        compile_span = by_name["job.compile"]
        fetch = by_name["insights.fetch"]
        match = by_name["view.match"]
        assert fetch.parent_id == compile_span.span_id
        assert match.parent_id == compile_span.span_id
        assert compile_span.attrs["views_reused"] == reuser.views_reused
        assert match.attrs["matches"] == reuser.views_reused
        # Spans carry simulated time: the fetch happens inside the compile.
        assert compile_span.start <= fetch.start <= compile_span.end

    def test_flamegraph_renders_the_nesting(self, recorded):
        recorder, report = recorded
        reuser = next(t for t in report.telemetry if t.views_reused > 0)
        text = recorder.tracer.render_flamegraph(reuser.job_id)
        lines = text.splitlines()
        compile_at = next(i for i, l in enumerate(lines)
                          if l.startswith("job.compile"))
        assert any(l.startswith("  insights.fetch")
                   for l in lines[compile_at + 1:])

    def test_selection_epochs_are_traced(self, recorded):
        recorder, report = recorded
        epochs = recorder.tracer.trace("epoch-1")
        assert [s.name for s in epochs] == ["selection.epoch"]
        assert len(report.selections) >= 1


class TestEventReplay:
    def test_jsonl_replays_to_recorded_totals(self, recorded, tmp_path):
        recorder, _ = recorded
        path = str(tmp_path / "events.jsonl")
        recorder.events.dump_jsonl(path)
        loaded = EventLog.load_jsonl(path)
        assert replay_counters(loaded) == \
            recorder.metrics.counters_with_prefix("events.")

    def test_event_log_covers_the_feedback_loop(self, recorded):
        recorder, _ = recorded
        counts = recorder.events.counts()
        for kind in ("job.compiled", "job.finished", "view.created",
                     "view.sealed", "view.reused", "lock.acquired",
                     "selection.epoch"):
            assert counts.get(kind, 0) > 0, kind


class TestDisabledRecorderIsInvisible:
    def test_no_recorder_matches_plain_run(self):
        config = SimulationConfig(days=2, cloudviews_enabled=True)
        plain = WorkloadSimulation(small_workload(), config).run()
        recorded = WorkloadSimulation(small_workload(), config,
                                      recorder=FlightRecorder()).run()
        assert plain.views_created == recorded.views_created
        assert plain.views_reused == recorded.views_reused
        assert len(plain.telemetry) == len(recorded.telemetry)
        for a, b in zip(plain.telemetry, recorded.telemetry):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
