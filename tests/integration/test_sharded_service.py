"""Integration tests: the sharded insights deployment end to end.

The contract under test: N shard worker processes behind the
:class:`ShardRouter` present exactly the same service surface, the same
annotation results, and the *bit-identical* simulated serving latency
as the in-process :class:`InsightsService` -- and when shards die, the
failure is absorbed by the same ladder the in-process deployment uses
(router retry + supervisor restart, then the client's circuit breaker
degrading affected signatures to no-reuse, never failing a job).
"""

import pytest

from repro.api import Session
from repro.catalog import schema_of
from repro.common.errors import InsightsError, InsightsTimeout
from repro.common.hashing import shard_for
from repro.config import SessionConfig
from repro.core import MultiLevelControls
from repro.faults import FaultPlan, FaultRuntime, FaultSpec, points
from repro.insights import InsightsClient
from repro.insights.client import OPEN
from repro.insights.service import InsightsService
from repro.optimizer.context import Annotation
from repro.selection import SelectionPolicy
from repro.shard import ShardConfig, ShardRouter, ShardSupervisor


def make_annotations(count=16):
    return [Annotation(recurring_signature=f"sig-{i}", tag=f"tag-{i % 8}",
                       expected_rows=i, expected_bytes=100 * i,
                       virtual_cluster="vc1")
            for i in range(count)]


def plain(annotation):
    return (annotation.recurring_signature, annotation.tag,
            annotation.expected_rows, annotation.expected_bytes,
            annotation.virtual_cluster)


@pytest.fixture(params=[1, 2, 4], ids=lambda n: f"shards{n}")
def deployment(request):
    supervisor = ShardSupervisor(ShardConfig(shards=request.param))
    supervisor.start()
    router = ShardRouter(supervisor)
    yield supervisor, router
    router.close()
    supervisor.close()


class TestServiceParity:
    """Router vs in-process service on the same publish/fetch sequence."""

    def test_publish_and_fetch_match_in_process(self, deployment):
        _, router = deployment
        service = InsightsService()
        published = make_annotations()
        assert router.publish(published) == service.publish(published)
        assert router.annotation_count() == service.annotation_count()
        tags = [f"tag-{i}" for i in range(8)] + ["ghost-tag"]
        sharded = router.fetch_tag_annotations(tags)
        local = service.fetch_tag_annotations(tags)
        assert set(sharded) == set(local)
        for tag in tags:
            assert (sorted(map(plain, sharded[tag]))
                    == sorted(map(plain, local[tag])))

    def test_fetch_latency_is_bit_identical(self, deployment):
        _, router = deployment
        service = InsightsService()
        router.publish(make_annotations())
        service.publish(make_annotations())
        tags = [f"tag-{i}" for i in range(8)]
        # Cold pass (all serving-cache misses), then warm pass: the
        # router re-accumulates per-tag charges in the caller's tag
        # order, so the floats must match exactly, not approximately.
        for _ in range(2):
            router.fetch_tag_annotations(tags)
            service.fetch_tag_annotations(tags)
            assert router.last_fetch_latency == service.last_fetch_latency

    def test_retract_removes_everywhere(self, deployment):
        _, router = deployment
        router.publish(make_annotations())
        removed = router.retract({"sig-0", "sig-7", "nope"})
        assert removed == 2
        assert router.annotation_count() == len(make_annotations()) - 2
        fetched = router.fetch_tag_annotations(["tag-0", "tag-7"])
        signatures = {a.recurring_signature
                      for annotations in fetched.values()
                      for a in annotations}
        assert "sig-0" not in signatures and "sig-7" not in signatures

    def test_view_locks_route_and_exclude(self, deployment):
        _, router = deployment
        signatures = [f"strict-{i}" for i in range(8)]
        for signature in signatures:
            assert router.acquire_view_lock(signature, holder="job-a")
            assert not router.acquire_view_lock(signature, holder="job-b")
            assert router.lock_holder(signature) == "job-a"
        assert set(router.held_locks()) == set(signatures)
        router.release_view_lock(signatures[0], holder="job-a")
        assert router.lock_holder(signatures[0]) is None
        assert router.force_release_lock(signatures[1])
        assert router.acquire_view_lock(signatures[1], holder="job-b")


class TestShardDeathHealing:
    def test_sigkill_heals_on_next_rpc_with_state_intact(self, deployment):
        supervisor, router = deployment
        before = router.annotation_count()
        assert router.publish(make_annotations()) == len(make_annotations())
        for shard_id in range(supervisor.config.shards):
            supervisor.kill(shard_id)
        # The next RPC finds dead sockets, asks the supervisor to
        # restart, and the respawned workers reload their persisted
        # annotation files -- nothing acknowledged is lost.
        assert router.annotation_count() == before + len(make_annotations())
        assert sum(supervisor.restarts) == supervisor.config.shards

    def test_injected_rpc_faults_surface_as_taxonomy_errors(self):
        supervisor = ShardSupervisor(ShardConfig(shards=2))
        supervisor.start()
        router = ShardRouter(supervisor, faults=FaultRuntime(FaultPlan(
            specs=(FaultSpec(points.SHARD_RPC, "drop", max_fires=1),
                   FaultSpec(points.SHARD_RPC, "error", max_fires=1)),
            seed=0, name="rpc-faults")))
        try:
            with pytest.raises(InsightsTimeout):
                router.fetch_tag_annotations(["tag-0"])
            with pytest.raises(InsightsError):
                router.fetch_tag_annotations(["tag-0"])
            # Fault budget exhausted: the deployment serves again.
            assert router.fetch_tag_annotations(["tag-0"]) == {"tag-0": []}
        finally:
            router.close()
            supervisor.close()


class TestDeadShardDegradesNotFails:
    """ISSUE satellite: a dead shard trips the circuit breaker and
    degrades affected signatures to no-reuse without failing jobs."""

    def test_breaker_opens_and_fetches_degrade(self):
        supervisor = ShardSupervisor(
            ShardConfig(shards=2, restart_dead=False))
        supervisor.start()
        router = ShardRouter(supervisor)
        client = InsightsClient(router)
        try:
            client.publish(make_annotations())
            dead = 0
            supervisor.kill(dead)
            dead_tags = [t for t in (f"probe-{i}" for i in range(64))
                         if shard_for(t, 2) == dead]
            threshold = client.config.breaker_failure_threshold
            assert len(dead_tags) >= threshold
            for i in range(threshold):
                fetched = client.fetch_annotations([dead_tags[i]],
                                                   now=float(i))
                assert fetched == {}
                assert client.last_fetch_degraded
            assert client.breaker.state == OPEN
            # restart_dead=False: the supervisor refused to revive it.
            assert supervisor.restarts == [0, 0]
        finally:
            router.close()
            supervisor.close()

    def test_jobs_complete_reuse_free_with_all_shards_dead(self):
        controls = MultiLevelControls()
        controls.enable_vc("vc1")
        session = Session(
            config=SessionConfig(
                shard=ShardConfig(shards=2, restart_dead=False)),
            controls=controls,
            selection_algorithm="bigsubs",
            policy=SelectionPolicy(storage_budget_bytes=10_000_000,
                                   min_reuses_per_epoch=0.0),
        )
        try:
            session.register_table(
                schema_of("Events", [("Day", "str"), ("Value", "float")]),
                [dict(Day=f"d{i % 3}", Value=float(i)) for i in range(30)])
            sql = ("SELECT Day, SUM(Value) AS total FROM Events "
                   "GROUP BY Day")
            expected = None
            for _ in range(2):
                result = session.run(sql, virtual_cluster="vc1",
                                     template_id="t-dead-shard")
                expected = sorted(map(repr, result.rows))
                session.analyze_and_publish()
            for shard_id in range(2):
                session.supervisor.kill(shard_id)
            # Every subsequent job must still complete with correct
            # rows; the degraded client compiles them reuse-free.
            reused_before = session.views_reused
            for i in range(6):
                result = session.run(sql, virtual_cluster="vc1",
                                     template_id="t-dead-shard")
                assert sorted(map(repr, result.rows)) == expected
            assert session.views_reused == reused_before
            assert session.engine.insights.degraded_fetches > 0
        finally:
            session.close()
