"""Integration test: the paper's tier-by-tier opt-out rollout (Section 4).

"After sufficient hardening of the CloudViews feature in production, we
have now started enabling it using an opt-out model, where virtual
clusters are grouped into tiers (based on business importance) and they
are automatically onboarded tier by tier, starting with the lowest tier."
"""

import pytest

from repro.common.clock import SECONDS_PER_DAY
from repro.core import (
    DeploymentMode,
    MultiLevelControls,
    SimulationConfig,
    WorkloadSimulation,
)
from repro.workload import generate_workload


def make_workload():
    return generate_workload(seed=13, virtual_clusters=3,
                             templates_per_vc=8, adhoc_per_day=0)


class TestTieredRollout:
    def test_onboarding_ramps_reuse_tier_by_tier(self):
        workload = make_workload()
        vc_low, vc_mid, vc_high = workload.virtual_clusters

        controls = MultiLevelControls(mode=DeploymentMode.OPT_OUT)
        controls.assign_tier(vc_low, 1)
        controls.assign_tier(vc_mid, 2)
        controls.assign_tier(vc_high, 3)
        # Nothing onboarded at the start.
        for vc in workload.virtual_clusters:
            controls.clear_vc(vc)

        def rollout(day, simulation):
            # Day 2: onboard tier 1; day 4: tiers 1-2; never tier 3.
            if day == 2:
                controls.onboard_up_to_tier(1)
            elif day == 4:
                controls.onboard_up_to_tier(2)

        config = SimulationConfig(days=6, cloudviews_enabled=True)
        simulation = WorkloadSimulation(workload, config,
                                        controls=controls,
                                        on_day_boundary=rollout)
        report = simulation.run()

        def reusers_on_day(vc, day):
            return sum(
                t.views_reused for t in report.telemetry
                if t.virtual_cluster == vc
                and day * SECONDS_PER_DAY <= t.submit_time
                < (day + 1) * SECONDS_PER_DAY)

        # Before any onboarding, no VC reuses.
        for vc in workload.virtual_clusters:
            assert reusers_on_day(vc, 1) == 0
        # After day 2, the lowest tier starts reusing; tier 2 only after
        # day 4; tier 3 never (it was never onboarded).
        assert sum(reusers_on_day(vc_low, d) for d in (2, 3)) > 0
        assert sum(reusers_on_day(vc_mid, d) for d in (2, 3)) == 0
        assert sum(reusers_on_day(vc_mid, d) for d in (4, 5)) > 0
        assert all(reusers_on_day(vc_high, d) == 0 for d in range(6))

    def test_opt_out_wins_over_tier(self):
        workload = make_workload()
        vc_low = workload.virtual_clusters[0]
        controls = MultiLevelControls(mode=DeploymentMode.OPT_OUT)
        for vc in workload.virtual_clusters:
            controls.assign_tier(vc, 1)
        controls.onboard_up_to_tier(1)
        controls.disable_vc(vc_low)  # the customer explicitly opted out

        config = SimulationConfig(days=4, cloudviews_enabled=True)
        report = WorkloadSimulation(workload, config,
                                    controls=controls).run()
        opted_out = [t for t in report.telemetry
                     if t.virtual_cluster == vc_low]
        assert all(t.views_reused == 0 and t.views_built == 0
                   for t in opted_out)
        others = [t for t in report.telemetry
                  if t.virtual_cluster != vc_low]
        assert any(t.views_reused > 0 for t in others)
