"""Integration tests: the full workload co-simulation.

These assert the *shape* of the paper's production results at test scale
(small day counts so the suite stays fast): CloudViews wins on every
Table-1 metric, views are reused multiple times per build, the first-job
materialization overhead exists, and schedule/selection mechanics hold.
"""

import pytest

from repro.core import (
    MultiLevelControls,
    SimulationConfig,
    WorkloadSimulation,
)
from repro.selection import SelectionPolicy
from repro.telemetry import compare_telemetry
from repro.workload import generate_workload


def small_workload(seed=7):
    return generate_workload(seed=seed, virtual_clusters=2,
                             templates_per_vc=10, adhoc_per_day=2)


def run_sim(enabled, days=4, seed=7, **config_kwargs):
    config = SimulationConfig(days=days, cloudviews_enabled=enabled,
                              **config_kwargs)
    return WorkloadSimulation(small_workload(seed), config).run()


@pytest.fixture(scope="module")
def reports():
    return run_sim(True), run_sim(False)


class TestSimulationShape:
    def test_same_job_population(self, reports):
        enabled, baseline = reports
        assert len(enabled.telemetry) == len(baseline.telemetry)

    def test_views_built_and_reused(self, reports):
        enabled, baseline = reports
        assert enabled.views_created > 0
        assert enabled.views_reused > enabled.views_created
        assert baseline.views_created == 0
        assert baseline.views_reused == 0

    def test_cloudviews_wins_every_table1_metric(self, reports):
        enabled, baseline = reports
        report = compare_telemetry(baseline.telemetry, enabled.telemetry)
        for metric in ("latency", "processing_time",
                       "bonus_processing_time", "containers",
                       "input_bytes", "data_read_bytes"):
            assert report.improvement_percent(metric) > 0, metric

    def test_median_latency_improvement_positive(self, reports):
        enabled, baseline = reports
        report = compare_telemetry(baseline.telemetry, enabled.telemetry)
        assert report.median_latency_improvement >= 0

    def test_selection_ran_each_feedback_day(self, reports):
        enabled, _ = reports
        assert len(enabled.selections) == 3  # days 1..3 for a 4-day run

    def test_daily_series_cumulative_monotone(self, reports):
        enabled, _ = reports
        series = enabled.cumulative_daily("processing_time")
        values = [v for _, v in series]
        assert values == sorted(values)

    def test_workload_overlap_shape(self, reports):
        enabled, _ = reports
        repo = enabled.repository
        assert repo.repeated_fraction() > 0.75
        assert repo.average_repeat_frequency() > 2.0

    def test_deterministic_simulation(self):
        a = run_sim(True, days=2)
        b = run_sim(True, days=2)
        assert [(t.job_id, t.finish_time) for t in a.telemetry] == \
            [(t.job_id, t.finish_time) for t in b.telemetry]

    def test_first_builder_slower_than_baseline_peer(self, reports):
        """Some jobs pay the materialization overhead (Section 2.4)."""
        enabled, baseline = reports
        base_by_key = {(t.virtual_cluster, round(t.submit_time, 3)): t
                       for t in baseline.telemetry}
        builders = [t for t in enabled.telemetry if t.views_built > 0]
        assert builders
        slower = sum(
            1 for t in builders
            if (match := base_by_key.get(
                (t.virtual_cluster, round(t.submit_time, 3)))) is not None
            and t.processing_time > match.processing_time)
        assert slower > 0


class TestSimulationMechanics:
    def test_controls_gate_the_simulation(self):
        controls = MultiLevelControls()  # opt-in, nothing onboarded
        config = SimulationConfig(days=3, cloudviews_enabled=True)
        report = WorkloadSimulation(small_workload(), config,
                                    controls=controls).run()
        assert report.views_created == 0

    def test_partially_onboarded_controls(self):
        workload = small_workload()
        controls = MultiLevelControls()
        controls.enable_vc(workload.virtual_clusters[0])
        config = SimulationConfig(days=3, cloudviews_enabled=True)
        report = WorkloadSimulation(workload, config, controls=controls).run()
        reusers = {t.virtual_cluster for t in report.telemetry
                   if t.views_reused > 0}
        assert reusers <= {workload.virtual_clusters[0]}

    def test_schedule_aware_policy_reduces_wasted_builds(self):
        aware = run_sim(True, policy_override=None) if False else None
        naive_cfg = SimulationConfig(
            days=4, cloudviews_enabled=True,
            policy=SelectionPolicy(storage_budget_bytes=50_000_000,
                                   materialization_lag_seconds=0.0,
                                   min_reuses_per_epoch=0.0))
        aware_cfg = SimulationConfig(
            days=4, cloudviews_enabled=True,
            policy=SelectionPolicy(storage_budget_bytes=50_000_000,
                                   materialization_lag_seconds=150.0,
                                   min_reuses_per_epoch=0.0))
        naive = WorkloadSimulation(small_workload(), naive_cfg).run()
        aware = WorkloadSimulation(small_workload(), aware_cfg).run()
        naive_ratio = naive.views_reused / max(1, naive.views_created)
        aware_ratio = aware.views_reused / max(1, aware.views_created)
        assert aware_ratio >= naive_ratio

    def test_storage_budget_limits_views(self):
        tight_cfg = SimulationConfig(
            days=3, cloudviews_enabled=True,
            policy=SelectionPolicy(storage_budget_bytes=200,
                                   min_reuses_per_epoch=0.0))
        roomy_cfg = SimulationConfig(
            days=3, cloudviews_enabled=True,
            policy=SelectionPolicy(storage_budget_bytes=50_000_000,
                                   min_reuses_per_epoch=0.0))
        tight = WorkloadSimulation(small_workload(), tight_cfg).run()
        roomy = WorkloadSimulation(small_workload(), roomy_cfg).run()
        assert tight.views_created <= roomy.views_created

    def test_selection_algorithms_all_run(self):
        for algorithm in ("greedy", "per_vc", "bigsubs"):
            config = SimulationConfig(days=3, cloudviews_enabled=True,
                                      selection_algorithm=algorithm)
            report = WorkloadSimulation(small_workload(), config).run()
            assert report.views_created >= 0  # completes without error

    def test_unknown_selection_algorithm_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSimulation(
                small_workload(),
                SimulationConfig(selection_algorithm="magic"))

    def test_results_correct_under_reuse(self):
        """Spot-check: a reused day's jobs produce the same answers as a
        reuse-free engine run over the same streams."""
        workload = small_workload()
        config = SimulationConfig(days=3, cloudviews_enabled=True)
        sim = WorkloadSimulation(workload, config)
        sim.run()
        engine = sim.engine
        for instance in workload.jobs_for_day(2)[:5]:
            with_reuse = engine.run_sql(
                instance.template.sql, params=instance.params,
                virtual_cluster=instance.template.virtual_cluster,
                now=instance.submit_time)
            without = engine.run_sql(
                instance.template.sql, params=instance.params,
                reuse_enabled=False, now=instance.submit_time)
            assert sorted(map(repr, with_reuse.rows)) == \
                sorted(map(repr, without.rows))
