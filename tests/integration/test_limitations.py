"""Tests that pin down the paper's documented limitations (Section 2.4).

These are *intentional* behaviours -- the reproduction must exhibit the
same blind spots the production system has, or it is modelling a
different system.
"""

import pytest

from repro.catalog import schema_of
from repro.engine import ScopeEngine
from repro.optimizer.context import Annotation
from repro.plan import PlanBuilder, normalize
from repro.optimizer.rules import apply_rewrites
from repro.signatures import enumerate_subexpressions
from repro.sql import parse


def annotate_all(engine, sql, params=None, only_largest=False):
    plan = normalize(apply_rewrites(
        PlanBuilder(engine.catalog, params).build(parse(sql))))
    subs = [s for s in enumerate_subexpressions(plan, engine.signature_salt)
            if s.height >= 1 and s.eligible]
    if only_largest:
        subs = [max(subs, key=lambda s: s.height)]
    engine.insights.publish([Annotation(s.recurring, s.tag) for s in subs])


class TestExactMatchOnly:
    """Limitation: 'it can only reuse the exact same logical query
    subexpressions' -- no algebraic equivalence, no containment (in the
    production path)."""

    @pytest.fixture
    def engine(self):
        eng = ScopeEngine()
        eng.register_table(
            schema_of("Sales", [("CustomerId", "int"), ("Price", "float")]),
            [dict(CustomerId=i % 30, Price=float(i)) for i in range(120)])
        return eng

    def test_algebraically_equal_predicate_not_reused(self, engine):
        view_sql = "SELECT CustomerId, Price FROM Sales WHERE CustomerId > 5"
        query_sql = ("SELECT CustomerId, Price FROM Sales "
                     "WHERE 2 * CustomerId > 10")
        annotate_all(engine, view_sql)
        engine.run_sql(view_sql)          # materializes
        run = engine.run_sql(query_sql, now=1.0)
        assert run.compiled.reused_views == 0  # the paper's §5.3 example

    def test_contained_predicate_not_reused_in_production_path(self, engine):
        view_sql = "SELECT CustomerId, Price FROM Sales WHERE CustomerId > 5"
        query_sql = "SELECT CustomerId, Price FROM Sales WHERE CustomerId > 6"
        annotate_all(engine, view_sql)
        engine.run_sql(view_sql)
        run = engine.run_sql(query_sql, now=1.0)
        assert run.compiled.reused_views == 0


class TestConcurrentQueries:
    """Limitation: 'CloudViews cannot help queries that are submitted
    concurrently unless their submission schedule is altered.'"""

    def test_simultaneous_compiles_cannot_reuse(self):
        engine = ScopeEngine()
        engine.register_table(
            schema_of("T", [("k", "int"), ("v", "float")]),
            [dict(k=i % 5, v=float(i)) for i in range(50)])
        engine.register_table(
            schema_of("D", [("k", "int"), ("n", "str")]),
            [dict(k=i, n=f"x{i}") for i in range(5)])
        sql = "SELECT n, SUM(v) AS s FROM T JOIN D GROUP BY n"
        annotate_all(engine, sql, only_largest=True)
        first = engine.compile(sql, now=100.0)
        second = engine.compile(sql, now=100.0)  # same instant
        assert first.built_views == 1
        assert second.built_views == 0   # build lock held by `first`
        assert second.reused_views == 0  # nothing sealed yet


class TestNotMaintained:
    """Limitation: views are 'recreated whenever the inputs change ...
    particularly true for recurring queries with a sliding window, e.g.,
    last seven days, where all except the most recent input in the window
    might remain same.'"""

    def _engine_with_daily_partitions(self, days=3):
        engine = ScopeEngine()
        for day in range(days):
            engine.register_table(
                schema_of(f"Events_d{day}", [("k", "int"), ("v", "float")]),
                [dict(k=i % 4, v=float(i + day)) for i in range(40)])
        return engine

    @staticmethod
    def _window_sql(days=3):
        parts = [f"SELECT k, v FROM Events_d{day}" for day in range(days)]
        inner = " UNION ALL ".join(parts)
        return (f"SELECT k, SUM(v) AS s FROM ({inner}) AS w GROUP BY k")

    def test_single_partition_update_invalidates_whole_window_view(self):
        engine = self._engine_with_daily_partitions()
        sql = self._window_sql()
        annotate_all(engine, sql)
        producer = engine.run_sql(sql)
        assert producer.compiled.built_views >= 1
        reuser = engine.run_sql(sql, now=1.0)
        assert reuser.compiled.reused_views >= 1

        # Only the newest day changes; the other partitions are untouched.
        engine.bulk_update("Events_d2",
                           [dict(k=i % 4, v=float(i)) for i in range(42)],
                           at=2.0)
        after = engine.run_sql(sql, now=3.0)
        # The union-wide view went stale even though 2 of 3 inputs are
        # unchanged -- and it is wastefully re-materialized from scratch.
        assert after.compiled.reused_views == 0
        assert after.compiled.built_views >= 1


class TestFirstHitSlowdown:
    """Limitation: 'the first query hitting a common subexpression slows
    down due to additional materialization overhead.'"""

    def test_builder_cost_exceeds_plain_cost(self):
        engine = ScopeEngine()
        engine.register_table(
            schema_of("T", [("k", "int"), ("v", "float")]),
            [dict(k=i % 5, v=float(i)) for i in range(100)])
        sql = "SELECT k, SUM(v) AS s FROM T WHERE v > 5 GROUP BY k"
        annotate_all(engine, sql)
        builder = engine.compile(sql)
        assert builder.built_views >= 1
        assert builder.optimized.estimated_cost > \
            builder.optimized.estimated_cost_without_reuse
