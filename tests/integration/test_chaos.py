"""Integration tests: chaos campaigns and end-to-end failure hardening.

The PR-9 tentpole: every injected fault in the reuse path must degrade
to plain recomputation -- never a failed job, never a wrong row, never a
catalog that cannot recover.  These tests drive the campaign runner the
CI ``chaos`` job uses, the kill-mid-CTAS restart probe, the torn-WAL
recovery event, and the repeated-failure quarantine path.
"""

import os

import pytest

from repro.api import Session
from repro.cli import main
from repro.core import MultiLevelControls
from repro.faults import FaultPlan, FaultRuntime, FaultSpec, points
from repro.faults.chaos import (
    campaign_plan,
    check_ctas_crash_recovery,
    run_campaign,
)
from repro.lifecycle import LifecycleConfig
from repro.obs import FlightRecorder
from repro.selection import SelectionPolicy


class TestCampaigns:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_campaign_invariants_hold(self, backend):
        report = run_campaign([0, 1], backend=backend, days=2)
        assert report.ok, report.summary()
        assert report.reference_jobs > 0
        # The harness must actually inject something, or the invariants
        # are vacuous.
        assert any(s.fired.get("fired_total", 0) > 0 for s in report.seeds)

    def test_campaign_plans_are_reproducible(self):
        assert campaign_plan(3).to_json() == campaign_plan(3).to_json()
        assert campaign_plan(3).to_json() != campaign_plan(4).to_json()

    def test_sharded_plan_extends_classic_without_reordering(self):
        classic = campaign_plan(3).specs
        sharded = campaign_plan(3, shards=2).specs
        assert sharded[:len(classic)] == classic
        extra = sharded[len(classic):]
        assert extra and all(s.point.startswith("shard.") for s in extra)

    def test_sharded_campaign_survives_kills_and_shard_faults(self):
        # Seed 5's sharded plan draws shard.death:crash, so this run
        # covers injected SIGKILLs at the router *and* the scripted
        # kill+restart at every faulted day boundary.
        report = run_campaign([5], backend="memory", days=2, shards=2)
        assert report.ok, report.summary()
        assert "shard." in report.seeds[0].plan
        assert report.seeds[0].fired.get("fired_total", 0) > 0

    def test_cli_chaos_passes(self, capsys):
        assert main(["chaos", "--seed", "0", "--backend", "memory",
                     "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos campaign PASS" in out

    def test_cli_chaos_plan_only(self, capsys):
        assert main(["chaos", "--plan", "--seed", "0..2"]) == 0
        out = capsys.readouterr().out
        assert out.count("seed ") == 3

    def test_cli_seed_env_override(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEEDS", "5")
        assert main(["chaos", "--plan", "--seed", "0..4"]) == 0
        out = capsys.readouterr().out
        assert out.count("seed ") == 1 and "seed 5:" in out


class TestKillMidCtas:
    def test_restart_shows_no_partially_visible_view(self, tmp_path):
        verdict = check_ctas_crash_recovery(str(tmp_path / "chaos.db"))
        assert "no partially visible view" in verdict


class TestTornTailRecovery:
    def test_session_recovers_past_torn_tail_and_records_event(
            self, tmp_path):
        journal_dir = str(tmp_path)
        # A first session writes real catalog state through the journal.
        first = Session(lifecycle=LifecycleConfig(journal_dir=journal_dir))
        first.register_table(_schema(), _rows())
        first.run("SELECT Day, COUNT(*) AS n FROM Events GROUP BY Day",
                  virtual_cluster="vc1")
        first.close()
        # Crash mid-append: the WAL gains a torn trailing line.
        with open(os.path.join(journal_dir, "wal.jsonl"), "a",
                  encoding="utf-8") as handle:
            handle.write('{"op": "reused", "signa')
        recorder = FlightRecorder()
        second = Session(lifecycle=LifecycleConfig(journal_dir=journal_dir),
                         recorder=recorder)
        counts = recorder.events.counts()
        assert counts.get("journal.torn_tail", 0) == 1
        assert recorder.metrics.counter("journal.torn_tails") == 1
        second.close()


class TestQuarantine:
    def test_repeatedly_unreadable_view_is_quarantined(self):
        controls = MultiLevelControls()
        controls.enable_vc("vc1")
        recorder = FlightRecorder()
        session = Session(
            backend="memory",
            controls=controls,
            selection_algorithm="bigsubs",
            policy=SelectionPolicy(storage_budget_bytes=10_000_000,
                                   min_reuses_per_epoch=0.0),
            recorder=recorder,
        )
        session.register_table(_schema(), _rows())
        sql = ("SELECT Day, SUM(Value) AS total FROM Events "
               "GROUP BY Day")
        expected = None
        for _ in range(2):
            result = session.run(sql, virtual_cluster="vc1",
                                 template_id="t-quarantine")
            expected = sorted(map(repr, result.rows))
            session.analyze_and_publish()
        # Build the view cleanly, then make every read of it fail.
        result = session.run(sql, virtual_cluster="vc1",
                             template_id="t-quarantine")
        assert session.views_created >= 1
        session.faults = FaultRuntime(FaultPlan(specs=[
            FaultSpec(points.BACKEND_SCAN_VIEW, "storage")]))
        session.backend.faults = session.faults
        for _ in range(session.engine.config.quarantine_failures + 1):
            result = session.run(sql, virtual_cluster="vc1",
                                 template_id="t-quarantine")
            # Degraded, never wrong: the reuse-free fallback recomputes.
            assert sorted(map(repr, result.rows)) == expected
        assert recorder.metrics.counter("engine.views.quarantined") >= 1
        assert recorder.events.counts().get("view.quarantined", 0) >= 1
        assert recorder.events.counts().get("execute.reuse_fallback",
                                            0) >= 1
        session.close()


def _schema():
    from repro.catalog import schema_of
    return schema_of("Events", [("UserId", "int"), ("Day", "str"),
                                ("Value", "float")])


def _rows():
    return [dict(UserId=i % 5, Day=f"d{i % 3}", Value=float(i))
            for i in range(30)]
