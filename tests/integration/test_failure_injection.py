"""Failure-injection tests: producing jobs that die mid-materialization.

A failed producer must not leave the system wedged: unsealed views are
abandoned, view-creation locks are released, and the next job over the
same subexpression can acquire the build.
"""

import pytest

from repro.catalog import schema_of
from repro.common.errors import ExecutionError
from repro.engine import ScopeEngine
from repro.executor import UdoRegistry
from repro.optimizer.context import Annotation
from repro.plan import PlanBuilder, normalize
from repro.optimizer.rules import apply_rewrites
from repro.signatures import enumerate_subexpressions
from repro.sql import parse


class _Bomb(Exception):
    pass


@pytest.fixture
def engine():
    udos = UdoRegistry()

    def explode(rows):
        raise ExecutionError("injected container failure")

    udos.register("Explode", explode)
    udos.register("Slow", lambda rows: rows)
    eng = ScopeEngine(udos=udos)
    eng.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 6, v=float(i)) for i in range(60)])
    eng.register_table(
        schema_of("D", [("k", "int"), ("name", "str")]),
        [dict(k=i, name=f"n{i}") for i in range(6)])
    return eng


#: The shared fragment lives BELOW the exploding UDO, so the job fails
#: after the spool would have been planned but the whole run aborts.
FAILING_SQL = ("SELECT name, SUM(v) AS s FROM T JOIN D GROUP BY name "
               "PROCESS USING Explode")
HEALTHY_SQL = "SELECT name, SUM(v) AS s FROM T JOIN D GROUP BY name"


def annotate(engine, sql=HEALTHY_SQL):
    plan = normalize(apply_rewrites(
        PlanBuilder(engine.catalog).build(parse(sql))))
    subs = enumerate_subexpressions(plan, engine.signature_salt)
    join = max((s for s in subs if s.operator == "Join"),
               key=lambda s: s.height)
    engine.insights.publish([Annotation(join.recurring, join.tag)])
    return join


class TestProducerFailure:
    def test_failed_producer_abandons_unsealed_views(self, engine):
        join = annotate(engine)
        compiled = engine.compile(FAILING_SQL)
        assert compiled.built_views == 1
        with pytest.raises(ExecutionError):
            engine.execute(compiled)
        # The unsealed view is gone; nothing is stuck "materializing".
        strict = compiled.optimized.proposals[0].strict_signature
        assert not engine.view_store.is_materializing(strict, now=1.0)
        assert engine.view_store.lookup(strict, now=1.0) is None

    def test_failed_producer_releases_lock(self, engine):
        annotate(engine)
        compiled = engine.compile(FAILING_SQL)
        strict = compiled.optimized.proposals[0].strict_signature
        with pytest.raises(ExecutionError):
            engine.execute(compiled)
        assert engine.insights.lock_holder(strict) is None

    def test_next_job_takes_over_the_build(self, engine):
        annotate(engine)
        failing = engine.compile(FAILING_SQL)
        with pytest.raises(ExecutionError):
            engine.execute(failing)
        # A healthy job over the same fragment builds and seals the view.
        healthy = engine.run_sql(HEALTHY_SQL, now=1.0)
        assert healthy.compiled.built_views == 1
        assert healthy.sealed_views
        reuser = engine.run_sql(HEALTHY_SQL, now=2.0)
        assert reuser.compiled.reused_views == 1

    def test_in_flight_build_blocks_concurrent_job_until_failure(self, engine):
        annotate(engine)
        failing = engine.compile(FAILING_SQL)
        # Compiled (lock held, view unsealed): a concurrent compile of the
        # same fragment neither builds nor reuses.
        concurrent = engine.compile(HEALTHY_SQL, now=0.0)
        assert concurrent.built_views == 0
        assert concurrent.reused_views == 0
        with pytest.raises(ExecutionError):
            engine.execute(failing)
        # After the failure cleanup, the fragment is buildable again.
        retry = engine.compile(HEALTHY_SQL, now=1.0)
        assert retry.built_views == 1

    def test_failure_does_not_corrupt_history(self, engine):
        annotate(engine)
        failing = engine.compile(FAILING_SQL)
        with pytest.raises(ExecutionError):
            engine.execute(failing)
        run = engine.run_sql(HEALTHY_SQL, now=1.0)
        again = engine.run_sql(HEALTHY_SQL, now=2.0)
        assert sorted(map(repr, run.rows)) == sorted(map(repr, again.rows))


class TestSimulatorFailureTolerance:
    def test_factory_exception_does_not_kill_other_jobs(self):
        """A job whose compilation explodes must not wedge the cluster."""
        from repro.cluster import ClusterSimulator, SimulatedJob, StageGraph

        sim = ClusterSimulator(total_containers=4, work_rate=100.0,
                               container_startup=0.0)
        good = StageGraph()
        stage = good.new_stage()
        stage.work = 100.0
        stage.partitions = 1

        def bad_factory(now):
            return None  # the runner converts failures into no-shows

        sim.add_arrival(0.0, bad_factory)
        sim.submit(SimulatedJob("ok", "vc", 1.0, good))
        results = sim.run()
        assert [t.job_id for t in results] == ["ok"]
