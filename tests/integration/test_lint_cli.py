"""Integration tests for ``repro lint``: the CI entry point must report
zero error findings over the bundled workloads, in both output formats,
with the documented exit-code contract."""

import json

import pytest

from repro.cli import main


def test_lint_cooking_json_is_clean(capsys):
    exit_code = main(["lint", "--workload", "cooking", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["ok"] is True
    assert payload["counts"]["error"] == 0
    assert payload["plans_analyzed"] > 0
    assert payload["rules_run"] >= 15
    assert payload["findings"] == []


def test_lint_tpcds_text_is_clean(capsys):
    exit_code = main(["lint", "--workload", "tpcds", "--scale-rows", "200"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert out.strip().endswith("rules)")
    assert out.startswith("ok:")


def test_lint_suppress_flag_reaches_analyzer(capsys):
    exit_code = main(["lint", "--workload", "cooking", "--format", "json",
                      "--suppress", "sig-determinism",
                      "--suppress", "sig-salt"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["rules_run"] == 20  # 22 registered minus 2 suppressed


def test_lint_list_rules(capsys):
    exit_code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert exit_code == 0
    for expected in ("plan-project-arity", "sig-determinism",
                     "reuse-view-liveness", "concurrency-lock-order"):
        assert expected in out


def test_lint_source_real_tree_has_no_errors(capsys):
    """The static concurrency rules must pass over src/repro itself."""
    exit_code = main(["lint", "--workload", "source", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["counts"]["error"] == 0
    concurrency = [f for f in payload["findings"]
                   if f["rule"].startswith("concurrency-")]
    assert all(f["severity"] != "error" for f in concurrency)


def test_lint_fail_on_thresholds(capsys):
    """--fail-on warn turns the journal's sanctioned I/O warnings into a
    non-zero exit; the default error threshold does not."""
    assert main(["lint", "--workload", "source"]) == 0
    capsys.readouterr()
    assert main(["lint", "--workload", "source", "--fail-on", "warn"]) == 1
    capsys.readouterr()


def test_lint_source_json_is_stable(capsys):
    """Two runs over the same tree render byte-identical JSON."""
    main(["lint", "--workload", "source", "--format", "json"])
    first = capsys.readouterr().out
    main(["lint", "--workload", "source", "--format", "json"])
    second = capsys.readouterr().out
    assert first == second
