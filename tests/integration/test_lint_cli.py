"""Integration tests for ``repro lint``: the CI entry point must report
zero error findings over the bundled workloads, in both output formats,
with the documented exit-code contract."""

import json

import pytest

from repro.cli import main


def test_lint_cooking_json_is_clean(capsys):
    exit_code = main(["lint", "--workload", "cooking", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["ok"] is True
    assert payload["counts"]["error"] == 0
    assert payload["plans_analyzed"] > 0
    assert payload["rules_run"] >= 15
    assert payload["findings"] == []


def test_lint_tpcds_text_is_clean(capsys):
    exit_code = main(["lint", "--workload", "tpcds", "--scale-rows", "200"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert out.strip().endswith("rules)")
    assert out.startswith("ok:")


def test_lint_suppress_flag_reaches_analyzer(capsys):
    exit_code = main(["lint", "--workload", "cooking", "--format", "json",
                      "--suppress", "sig-determinism",
                      "--suppress", "sig-salt"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["rules_run"] == 15  # 17 registered minus 2 suppressed


def test_lint_list_rules(capsys):
    exit_code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert exit_code == 0
    for expected in ("plan-project-arity", "sig-determinism",
                     "reuse-view-liveness"):
        assert expected in out
