"""Integration tests: the complete CloudViews feedback loop.

Covers the Figure-5 flow end to end: workload observation -> analysis ->
selection -> insights publication -> compile-time buildout -> online
materialization with early sealing -> compile-time matching -> correct
results -> invalidation.
"""

import pytest

from repro.catalog import schema_of
from repro.core import CloudViews, MultiLevelControls
from repro.selection import SelectionPolicy


def result_set(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


@pytest.fixture
def cloudviews():
    cv = CloudViews(
        controls=_enabled_controls(),
        policy=SelectionPolicy(storage_budget_bytes=10_000_000,
                               min_reuses_per_epoch=0.0),
        selection_algorithm="bigsubs",
    )
    engine = cv.engine
    engine.register_table(
        schema_of("Events", [("UserId", "int"), ("Day", "str"),
                             ("Value", "float")]),
        [dict(UserId=i % 7, Day="d0", Value=float(i)) for i in range(80)])
    engine.register_table(
        schema_of("Users", [("UserId", "int"), ("Segment", "str")]),
        [dict(UserId=i, Segment="Asia" if i % 2 else "Europe")
         for i in range(7)])
    return cv


def _enabled_controls():
    controls = MultiLevelControls()
    controls.enable_vc("vc1")
    return controls


Q1 = ("SELECT UserId, SUM(Value) AS total FROM Events JOIN Users "
      "WHERE Segment = 'Asia' AND Day = @run GROUP BY UserId")
Q2 = ("SELECT Segment, COUNT(*) AS n FROM Events JOIN Users "
      "WHERE Segment = 'Asia' AND Day = @run GROUP BY Segment")
PARAMS = {"run": "d0"}


class TestFullLoop:
    def test_observe_select_build_reuse(self, cloudviews):
        # Round 1: observe the workload (no reuse possible yet).
        r1 = cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        r2 = cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        assert r1.compiled.built_views == 0

        # Feedback: analyze and publish selections.
        selection = cloudviews.analyze_and_publish()
        assert selection.selected

        # Round 2: the first job materializes, the second reuses.
        r3 = cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)
        r4 = cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=11.0)
        assert r3.compiled.built_views >= 1
        assert r4.compiled.reused_views >= 1

        # Correctness: reuse changes nothing about the answers.
        assert result_set(r3.rows) == result_set(r1.rows)
        assert result_set(r4.rows) == result_set(r2.rows)

    def test_reuse_across_different_queries(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)
        run = cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=11.0)
        # Q2 reuses a view built by Q1 -- cross-query sharing.
        assert run.compiled.reused_views >= 1

    def test_first_job_pays_materialization_overhead(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        builder = cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)
        # Section 2.4 "User expectations": the builder's plan costs more
        # than the plain plan would (spool write overhead).
        assert builder.compiled.optimized.estimated_cost > \
            builder.compiled.optimized.estimated_cost_without_reuse

    def test_reuser_is_cheaper(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)
        reuser = cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=11.0)
        assert reuser.compiled.optimized.estimated_cost < \
            reuser.compiled.optimized.estimated_cost_without_reuse

    def test_bulk_update_stops_reuse_then_rebuilds(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)

        cloudviews.engine.bulk_update(
            "Events",
            [dict(UserId=i % 7, Day="d0", Value=float(i * 2))
             for i in range(90)], at=20.0)
        rebuilt = cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=21.0)
        assert rebuilt.compiled.reused_views == 0
        assert rebuilt.compiled.built_views >= 1  # just-in-time rebuild

    def test_views_counted(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=11.0)
        assert cloudviews.views_created >= 1
        assert cloudviews.views_reused >= 1
        assert cloudviews.storage_in_use(now=12.0) > 0

    def test_purge_stops_reuse(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        builder = cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)
        for signature in builder.sealed_views:
            cloudviews.purge_view(signature)
        run = cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=11.0)
        assert run.compiled.reused_views == 0

    def test_eviction_frees_storage(self, cloudviews):
        cloudviews.engine.view_store.ttl_seconds = 50.0
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)
        assert cloudviews.storage_in_use(now=11.0) > 0
        evicted = cloudviews.evict_expired(now=1000.0)
        assert evicted >= 1
        assert cloudviews.storage_in_use(now=1000.0) == 0


class TestControlsIntegration:
    def test_disabled_vc_never_reuses(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc2", template_id="t1", now=0.0)
        cloudviews.run(Q1, PARAMS, "vc2", template_id="t1", now=1.0)
        cloudviews.analyze_and_publish()
        run = cloudviews.run(Q1, PARAMS, "vc2", template_id="t1", now=10.0)
        assert run.compiled.built_views == 0
        assert run.compiled.reused_views == 0

    def test_job_override_disables_one_job(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        run = cloudviews.run(Q1, PARAMS, "vc1", template_id="t1",
                             job_reuse_override=False, now=10.0)
        assert run.compiled.built_views == 0

    def test_service_kill_switch(self, cloudviews):
        cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=0.0)
        cloudviews.run(Q2, PARAMS, "vc1", template_id="t2", now=1.0)
        cloudviews.analyze_and_publish()
        cloudviews.engine.insights.enabled = False
        run = cloudviews.run(Q1, PARAMS, "vc1", template_id="t1", now=10.0)
        assert run.compiled.built_views == 0
        assert run.compiled.reused_views == 0
