"""Integration tests: the view lifecycle manager on a live engine.

Covers the PR-5 tentpole end to end: lineage capture during the feedback
loop, GDPR purge cascades checked against an independently computed
lineage closure, bulk-update invalidation, runtime epoch bumps, and the
kill-and-recover guarantee (journal replay reproduces the pre-crash
catalog digest exactly).
"""

import pytest

from repro.catalog import schema_of
from repro.cli import main
from repro.core import CloudViews, MultiLevelControls
from repro.lifecycle import LifecycleConfig, LifecycleManager
from repro.plan.logical import Scan, ViewScan
from repro.selection import SelectionPolicy
from repro.storage.views import ViewStore


Q1 = ("SELECT UserId, SUM(Value) AS total FROM Events JOIN Users "
      "WHERE Segment = 'Asia' AND Day = @run GROUP BY UserId")
Q2 = ("SELECT Segment, COUNT(*) AS n FROM Events JOIN Users "
      "WHERE Segment = 'Asia' AND Day = @run GROUP BY Segment")
QE = ("SELECT Day, COUNT(*) AS n FROM Events WHERE Day = @run "
      "GROUP BY Day")
PARAMS = {"run": "d0"}


def make_cloudviews():
    controls = MultiLevelControls()
    controls.enable_vc("vc1")
    cv = CloudViews(
        controls=controls,
        policy=SelectionPolicy(storage_budget_bytes=10_000_000,
                               min_reuses_per_epoch=0.0),
        selection_algorithm="bigsubs",
    )
    cv.engine.register_table(
        schema_of("Events", [("UserId", "int"), ("Day", "str"),
                             ("Value", "float")]),
        [dict(UserId=i % 7, Day="d0", Value=float(i)) for i in range(80)])
    cv.engine.register_table(
        schema_of("Users", [("UserId", "int"), ("Segment", "str")]),
        [dict(UserId=i, Segment="Asia" if i % 2 else "Europe")
         for i in range(7)])
    return cv


@pytest.fixture
def managed(tmp_path):
    cv = make_cloudviews()
    manager = LifecycleManager(
        cv.engine, LifecycleConfig(journal_dir=str(tmp_path / "journal")))
    yield cv, manager
    manager.close()


def build_views(cv, queries=(Q1, Q2), start=0.0):
    """One full feedback-loop round: observe, publish, materialize."""
    now = start
    for i, sql in enumerate(queries, start=1):
        cv.run(sql, PARAMS, "vc1", template_id=f"t{i}", now=now)
        now += 1.0
    cv.analyze_and_publish()
    now += 10.0
    for i, sql in enumerate(queries, start=1):
        cv.run(sql, PARAMS, "vc1", template_id=f"t{i}", now=now)
        now += 1.0
    return now


def dataset_closure(view, store):
    """Independently compute the datasets a view transitively reads by
    walking its logical definition (not the lineage registry)."""
    datasets = set()
    stack = [view.definition]
    while stack:
        plan = stack.pop()
        if plan is None:
            continue
        for node in plan.walk():
            if isinstance(node, Scan):
                datasets.add(node.dataset)
            elif isinstance(node, ViewScan):
                base = store.get(node.signature)
                if base is not None:
                    stack.append(base.definition)
    return datasets


def sealed_views(store):
    return [v for v in store.views() if v.sealed and not v.purged]


class TestLineageCapture:
    def test_built_views_have_recorded_lineage(self, managed):
        cv, manager = managed
        build_views(cv)
        views = sealed_views(cv.engine.view_store)
        assert views
        for view in views:
            assert manager.lineage.has(view.signature)
            recorded = {d for d, _ in manager.lineage.inputs_of(
                view.signature)}
            assert recorded == dataset_closure(view, cv.engine.view_store)

    def test_lineage_guid_matches_catalog(self, managed):
        cv, manager = managed
        build_views(cv)
        events_guid = cv.engine.catalog.current_guid("Events")
        assert manager.lineage.views_reading_guid(events_guid) \
            == manager.lineage.views_reading_dataset("Events")


class TestGdprForget:
    def test_purges_all_and_only_dependents_of_the_stream(self, managed):
        cv, manager = managed
        # QE rides under two templates so its Events-only subexpression
        # recurs and gets selected alongside the Events-Users join.
        build_views(cv, queries=(Q1, Q2, QE, QE))
        store = cv.engine.view_store
        before = sealed_views(store)
        # Independent ground truth: walk every view's logical plan.
        expected = {v.signature for v in before
                    if "Users" in dataset_closure(v, store)}
        spared = {v.signature for v in before} - expected
        assert expected, "workload must yield Users-reading views"
        assert spared, "workload must yield views not reading Users"

        purged_count = manager.forget_stream("Users", at=100.0)

        actually_purged = {v.signature for v in store.views() if v.purged}
        assert actually_purged == expected  # all and only
        assert purged_count == len(expected)
        for signature in spared:
            assert not store.get(signature).purged

    def test_forget_bumps_insights_generation(self, managed):
        cv, manager = managed
        build_views(cv)
        generation = cv.engine.insights.generation
        assert manager.forget_stream("Users", at=100.0) > 0
        assert cv.engine.insights.generation > generation

    def test_engine_gdpr_forget_triggers_the_same_cascade(self, managed):
        cv, manager = managed
        build_views(cv)
        store = cv.engine.view_store
        dependents = manager.lineage.views_reading_dataset("Users")
        assert dependents
        cv.engine.gdpr_forget("Users", lambda row: row["UserId"] != 3,
                              at=100.0)
        for signature in dependents:
            assert store.get(signature).purged

    def test_rebuilt_views_reflect_forgotten_rows(self, managed):
        cv, manager = managed
        build_views(cv)
        cv.engine.gdpr_forget("Users", lambda row: row["UserId"] != 1,
                              at=100.0)
        # Next round rebuilds over the new stream; user 1 is gone.
        run = cv.run(Q1, PARAMS, "vc1", template_id="t1", now=110.0)
        assert all(row["UserId"] != 1 for row in run.rows)


class TestBulkUpdateCascade:
    def test_stale_guid_dependents_are_purged(self, managed):
        cv, manager = managed
        build_views(cv)
        store = cv.engine.view_store
        dependents = manager.lineage.views_reading_dataset("Events")
        assert dependents
        cv.engine.bulk_update(
            "Events",
            [dict(UserId=i % 7, Day="d0", Value=1.0) for i in range(40)],
            at=100.0)
        for signature in dependents:
            assert store.get(signature).purged
        assert manager.cascades >= 1

    def test_purged_views_no_longer_match(self, managed):
        cv, manager = managed
        build_views(cv)
        reused_before = cv.engine.view_store.counters()["total_reused"]
        cv.engine.bulk_update(
            "Events",
            [dict(UserId=i % 7, Day="d0", Value=1.0) for i in range(40)],
            at=100.0)
        run = cv.run(Q1, PARAMS, "vc1", template_id="t1", now=110.0)
        assert run.compiled.reused_views == 0
        assert cv.engine.view_store.counters()["total_reused"] \
            == reused_before


class TestEpochBump:
    def test_bump_darkens_everything(self, managed):
        cv, manager = managed
        build_views(cv)
        assert cv.engine.insights.annotation_count() > 0
        old_version = cv.engine.runtime_version

        version = manager.bump_epoch(at=100.0)

        assert cv.engine.runtime_version == version != old_version
        assert manager.epoch == 1
        assert cv.engine.insights.annotation_count() == 0
        assert all(v.purged for v in cv.engine.view_store.views())

    def test_loop_recovers_after_bump(self, managed):
        cv, manager = managed
        build_views(cv)
        manager.bump_epoch(at=100.0)
        # The feedback loop re-selects and rebuilds under the new salt.
        end = build_views(cv, start=200.0)
        run = cv.run(Q1, PARAMS, "vc1", template_id="t1", now=end)
        assert run.compiled.reused_views >= 1


class TestPurgeView:
    def test_purge_view_retracts_annotation_and_lock(self, managed):
        cv, manager = managed
        build_views(cv)
        insights = cv.engine.insights
        view = next(v for v in sealed_views(cv.engine.view_store)
                    if v.recurring_signature)
        count = insights.annotation_count()
        insights.acquire_view_lock(view.signature, holder="job-z")

        cv.purge_view(view.signature)

        assert cv.engine.view_store.get(view.signature).purged
        assert insights.annotation_count() == count - 1
        assert insights.lock_holder(view.signature) is None


class TestKillAndRecover:
    def test_wal_replay_reproduces_digest(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        cv = make_cloudviews()
        manager = LifecycleManager(
            cv.engine, LifecycleConfig(journal_dir=journal_dir))
        build_views(cv)
        cv.engine.view_store.purge(
            sealed_views(cv.engine.view_store)[0].signature)
        digest = cv.engine.view_store.catalog_digest()
        counters = cv.engine.view_store.counters()
        lineage = manager.lineage.snapshot()
        # Crash: no close(), no snapshot -- the WAL is all that survives.

        recovered = make_cloudviews()
        manager2 = LifecycleManager(
            recovered.engine, LifecycleConfig(journal_dir=journal_dir))
        try:
            assert recovered.engine.view_store.catalog_digest() == digest
            assert recovered.engine.view_store.counters() == counters
            assert manager2.lineage.snapshot() == lineage
            assert manager2.last_recovery.wal_ops > 0
            assert manager2.last_recovery.snapshot_views == 0
        finally:
            manager2.close()

    def test_snapshot_plus_wal_tail_reproduces_digest(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        cv = make_cloudviews()
        manager = LifecycleManager(
            cv.engine, LifecycleConfig(journal_dir=journal_dir))
        build_views(cv)
        manager.snapshot()
        # Post-snapshot mutations land only in the WAL tail.
        end = build_views(cv, queries=(QE,), start=100.0)
        cv.run(Q1, PARAMS, "vc1", template_id="t1", now=end)
        digest = cv.engine.view_store.catalog_digest()
        counters = cv.engine.view_store.counters()
        # Crash.

        recovered = make_cloudviews()
        manager2 = LifecycleManager(
            recovered.engine, LifecycleConfig(journal_dir=journal_dir))
        try:
            assert recovered.engine.view_store.catalog_digest() == digest
            assert recovered.engine.view_store.counters() == counters
            assert manager2.last_recovery.snapshot_views > 0
        finally:
            manager2.close()

    def test_recovered_lineage_still_cascades(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        cv = make_cloudviews()
        manager = LifecycleManager(
            cv.engine, LifecycleConfig(journal_dir=journal_dir))
        build_views(cv)
        dependents = set(manager.lineage.views_reading_dataset("Users"))
        assert dependents
        # Crash, then recover into a *fresh* engine whose catalog has no
        # datasets registered: the forget must run purely off recovered
        # lineage.
        from repro.engine import ScopeEngine
        engine = ScopeEngine()
        manager2 = LifecycleManager(
            engine, LifecycleConfig(journal_dir=journal_dir))
        try:
            purged = manager2.forget_stream("Users", at=100.0)
            assert purged == len(dependents)
            for signature in dependents:
                assert engine.view_store.get(signature).purged
        finally:
            manager2.close()


class TestCliGc:
    @pytest.fixture
    def populated_journal(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        cv = make_cloudviews()
        manager = LifecycleManager(
            cv.engine, LifecycleConfig(journal_dir=journal_dir))
        build_views(cv)
        store = cv.engine.view_store
        manager.close()
        return journal_dir, store

    def test_stats_prints_recovered_catalog(self, populated_journal,
                                            capsys):
        journal_dir, store = populated_journal
        assert main(["gc", "--journal-dir", journal_dir,
                     "--stats", "--now", "0"]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "views_total" in out

    def test_forget_purges_from_recovered_lineage(self, populated_journal,
                                                  capsys):
        journal_dir, store = populated_journal
        dependents = sum(
            1 for v in store.views()
            if not v.purged)  # every view in this workload reads Events
        assert main(["gc", "--journal-dir", journal_dir,
                     "--forget", "Events", "--now", "50"]) == 0
        out = capsys.readouterr().out
        assert f"purged {dependents} dependent view(s)" in out

    def test_sweep_reports_collection(self, populated_journal, capsys):
        journal_dir, _ = populated_journal
        assert main(["gc", "--journal-dir", journal_dir,
                     "--forget", "Events", "--now", "50"]) == 0
        capsys.readouterr()
        assert main(["gc", "--journal-dir", journal_dir,
                     "--sweep", "--now", "60"]) == 0
        assert "sweep: expired" in capsys.readouterr().out

    def test_bump_epoch_via_cli(self, populated_journal, capsys):
        journal_dir, _ = populated_journal
        assert main(["gc", "--journal-dir", journal_dir,
                     "--bump-epoch", "--now", "50"]) == 0
        assert "runtime epoch bumped" in capsys.readouterr().out
