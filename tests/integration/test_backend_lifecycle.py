"""Regression: lifecycle purge and GC must drop views on the execution
backend, not just in the in-memory blob store.

On the SQLite backend a materialized view is a real database table; if
eviction only forgets the catalog entry, the table leaks storage that
the budget accounting no longer sees.  These tests build views through
a full feedback-loop round on a ``Session(backend="sqlite")`` and then
assert the backing tables are gone after a GDPR purge cascade and after
a GC sweep.
"""

import pytest

from repro.api import Session
from repro.catalog import schema_of
from repro.core import MultiLevelControls
from repro.lifecycle import LifecycleConfig
from repro.selection import SelectionPolicy

Q1 = ("SELECT UserId, SUM(Value) AS total FROM Events JOIN Users "
      "WHERE Segment = 'Asia' AND Day = @run GROUP BY UserId")
Q2 = ("SELECT Segment, COUNT(*) AS n FROM Events JOIN Users "
      "WHERE Segment = 'Asia' AND Day = @run GROUP BY Segment")
PARAMS = {"run": "d0"}


@pytest.fixture(params=["memory", "sqlite"])
def session(request, tmp_path):
    controls = MultiLevelControls()
    controls.enable_vc("vc1")
    session = Session(
        backend=request.param,
        controls=controls,
        policy=SelectionPolicy(storage_budget_bytes=10_000_000,
                               min_reuses_per_epoch=0.0),
        selection_algorithm="bigsubs",
        lifecycle=LifecycleConfig(journal_dir=str(tmp_path / "journal")),
    )
    session.register_table(
        schema_of("Events", [("UserId", "int"), ("Day", "str"),
                             ("Value", "float")]),
        [dict(UserId=i % 7, Day="d0", Value=float(i)) for i in range(80)])
    session.register_table(
        schema_of("Users", [("UserId", "int"), ("Segment", "str")]),
        [dict(UserId=i, Segment="Asia" if i % 2 else "Europe")
         for i in range(7)])
    yield session
    session.close()


def build_views(session):
    now = 0.0
    for i, sql in enumerate((Q1, Q2), start=1):
        session.run(sql, params=PARAMS, virtual_cluster="vc1",
                    template_id=f"t{i}", now=now)
        now += 1.0
    session.analyze_and_publish()
    now += 10.0
    for i, sql in enumerate((Q1, Q2), start=1):
        session.run(sql, params=PARAMS, virtual_cluster="vc1",
                    template_id=f"t{i}", now=now)
        now += 1.0
    return now


def view_is_stored(session, path):
    backend = session.backend
    if hasattr(backend, "has_view"):
        return backend.has_view(path)
    try:
        backend.scan_view(path)
        return True
    except Exception:
        return False


def test_gdpr_purge_drops_backend_views(session):
    build_views(session)
    paths = [v.path for v in session.engine.view_store.views()]
    assert paths, "feedback loop should have materialized views"
    assert all(view_is_stored(session, p) for p in paths)

    purged = session.lifecycle.forget_stream("Events", at=20.0)
    assert purged == len(paths)
    # The cascade marks the views purged; the next sweep collects them
    # and must reach the backend: every dropped view's backing table
    # (SQLite) or blob (memory) is gone, not just its catalog entry.
    session.gc_sweep(now=21.0)
    assert not any(view_is_stored(session, p) for p in paths)


def test_gc_sweep_drops_backend_views(session):
    build_views(session)
    paths = [v.path for v in session.engine.view_store.views()]
    assert paths
    for view in session.engine.view_store.views():
        session.engine.view_store.purge(view.signature, reason="test")
    session.gc_sweep(now=30.0)
    assert not any(view_is_stored(session, p) for p in paths)


def test_expiry_sweep_drops_backend_views(session):
    build_views(session)
    ttl = session.engine.config.view_ttl_seconds
    paths = [v.path for v in session.engine.view_store.views()]
    assert paths
    session.gc_sweep(now=ttl + 100.0)
    assert not any(view_is_stored(session, p) for p in paths)
