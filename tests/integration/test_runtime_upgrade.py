"""Integration tests: runtime upgrades and re-analysis (Section 4).

"Sometimes they also evolve with new SCOPE runtime ... As a result, all
existing materialized views get invalidated.  Thus, evolving signatures
is very tricky since we need to keep track of changes that can affect
signatures and re-run any prior workload analysis."
"""

import pytest

from repro.catalog import schema_of
from repro.core import CloudViews, MultiLevelControls
from repro.selection import SelectionPolicy


@pytest.fixture
def cloudviews():
    controls = MultiLevelControls()
    controls.enable_vc("vc1")
    cv = CloudViews(controls=controls,
                    policy=SelectionPolicy(min_reuses_per_epoch=0.0))
    cv.engine.register_table(
        schema_of("T", [("k", "int"), ("v", "float")]),
        [dict(k=i % 5, v=float(i)) for i in range(60)])
    cv.engine.register_table(
        schema_of("D", [("k", "int"), ("n", "str")]),
        [dict(k=i, n=f"x{i}") for i in range(5)])
    return cv


SQL_A = "SELECT n, SUM(v) AS s FROM T JOIN D GROUP BY n"
SQL_B = "SELECT n, COUNT(*) AS c FROM T JOIN D GROUP BY n"


def observe_round(cv, now):
    cv.run(SQL_A, virtual_cluster="vc1", template_id="a", now=now)
    cv.run(SQL_B, virtual_cluster="vc1", template_id="b", now=now + 1)


class TestRuntimeUpgrade:
    def test_upgrade_withdraws_annotations(self, cloudviews):
        observe_round(cloudviews, 0.0)
        cloudviews.analyze_and_publish()
        assert cloudviews.engine.insights.annotation_count() > 0
        cloudviews.handle_runtime_upgrade("scope-r2")
        assert cloudviews.engine.insights.annotation_count() == 0
        assert cloudviews.last_selection is None

    def test_analysis_ignores_old_runtime_records(self, cloudviews):
        observe_round(cloudviews, 0.0)
        cloudviews.handle_runtime_upgrade("scope-r2")
        # Only old-runtime records exist: analysis must select nothing.
        result = cloudviews.analyze_and_publish()
        assert result.selected == []

    def test_reanalysis_after_new_observations(self, cloudviews):
        observe_round(cloudviews, 0.0)
        cloudviews.analyze_and_publish()
        cloudviews.handle_runtime_upgrade("scope-r2")
        # Fresh observations under the new runtime restore the loop.
        observe_round(cloudviews, 100.0)
        result = cloudviews.analyze_and_publish()
        assert result.selected
        builder = cloudviews.run(SQL_A, virtual_cluster="vc1",
                                 template_id="a", now=200.0)
        reuser = cloudviews.run(SQL_B, virtual_cluster="vc1",
                                template_id="b", now=201.0)
        assert builder.compiled.built_views >= 1
        assert reuser.compiled.reused_views >= 1

    def test_results_stable_across_upgrade(self, cloudviews):
        before = cloudviews.run(SQL_A, virtual_cluster="vc1",
                                template_id="a", now=0.0)
        cloudviews.handle_runtime_upgrade("scope-r2")
        after = cloudviews.run(SQL_A, virtual_cluster="vc1",
                               template_id="a", now=1.0)
        assert sorted(map(repr, before.rows)) == sorted(map(repr, after.rows))

    def test_mixed_runtime_repository_partitions_cleanly(self, cloudviews):
        observe_round(cloudviews, 0.0)
        cloudviews.handle_runtime_upgrade("scope-r2")
        observe_round(cloudviews, 100.0)
        old = cloudviews.repository.for_runtime("scope-r1")
        new = cloudviews.repository.for_runtime("scope-r2")
        assert old.total_jobs() == 2
        assert new.total_jobs() == 2
        # The same logical plans hash differently across runtimes.
        old_signatures = {r.recurring for r in old.subexpressions}
        new_signatures = {r.recurring for r in new.subexpressions}
        assert not (old_signatures & new_signatures)
