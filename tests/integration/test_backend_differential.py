"""The differential harness as a test: byte-equal results and identical
reuse decisions across backends, on both bundled workloads.

This is the tentpole acceptance gate: if the SQLite lowering diverges
from the interpreter anywhere a workload can reach -- expression
semantics, NULL handling, byte accounting, spool/view-scan plumbing --
one of these multiset row comparisons or catalog digests breaks.
"""

import pytest

from repro.backends.differential import (
    canonical_rows,
    canonical_value,
    run_cooking_differential,
    run_tpcds_differential,
)


class TestCanonicalization:
    def test_bool_and_int_collapse(self):
        assert canonical_value(True) == "1"
        assert canonical_value(False) == "0"
        assert canonical_value(1) == "1"

    def test_integral_float_collapses_to_int(self):
        assert canonical_value(5.0) == canonical_value(5)

    def test_negative_zero_collapses(self):
        assert canonical_value(-0.0) == canonical_value(0.0)

    def test_float_rounds_to_nine_significant_digits(self):
        assert canonical_value(1.0000000001) == "1"
        assert canonical_value(0.1) == "0.1"

    def test_null_and_strings_exact(self):
        assert canonical_value(None) is None
        assert canonical_value("0123") == "0123"

    def test_rows_are_order_independent(self):
        a = [dict(x=1, y="a"), dict(x=2, y="b")]
        assert canonical_rows(a) == canonical_rows(list(reversed(a)))


@pytest.fixture(scope="module")
def tpcds_report():
    return run_tpcds_differential(scale_rows=300)


@pytest.fixture(scope="module")
def cooking_report():
    return run_cooking_differential(days=2)


class TestTpcdsDifferential:
    def test_no_mismatches(self, tpcds_report):
        assert tpcds_report.ok, tpcds_report.mismatches

    def test_reuse_actually_happened(self, tpcds_report):
        # The invariance claim is vacuous unless the reuse-on runs
        # really did build and reuse views on both backends.
        for trace in tpcds_report.traces:
            if trace.reuse:
                assert trace.views_created > 0
                assert trace.views_reused > 0

    def test_catalog_digest_invariant_across_backends(self, tpcds_report):
        digests = {t.backend: t.catalog_digest
                   for t in tpcds_report.traces if t.reuse}
        assert len(set(digests.values())) == 1, digests


class TestCookingDifferential:
    def test_no_mismatches(self, cooking_report):
        assert cooking_report.ok, cooking_report.mismatches

    def test_reuse_actually_happened(self, cooking_report):
        for trace in cooking_report.traces:
            if trace.reuse:
                assert trace.views_reused > 0

    def test_catalog_digest_invariant_across_backends(self, cooking_report):
        digests = {t.backend: t.catalog_digest
                   for t in cooking_report.traces if t.reuse}
        assert len(set(digests.values())) == 1, digests
