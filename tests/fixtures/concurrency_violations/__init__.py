"""Seeded concurrency violations for the static analyzer's tests.

Every module here contains a deliberate bug the ``concurrency-*`` rule
family must detect.  The filenames are deliberately not ``test_*`` so
pytest never collects them, and nothing imports them at runtime -- the
analyzer parses them with ``ast`` only.
"""
