"""Seeded violations: lock-order cycle and rank-hierarchy inversion."""

import threading

from repro.common.sync import TrackedLock


class CycledPair:
    """Acquires its two locks in both orders: a classic ABBA deadlock."""

    def __init__(self) -> None:
        self._table_mutex = threading.Lock()
        self._index_mutex = threading.Lock()
        self.rows = 0

    def insert(self) -> None:
        with self._table_mutex:
            with self._index_mutex:
                self.rows += 1

    def reindex(self) -> None:
        with self._index_mutex:
            with self._table_mutex:
                self.rows += 0


class RankInverter:
    """Holds a low-ranked tracked lock while taking a higher rank."""

    def __init__(self) -> None:
        self._low_mutex = TrackedLock("fixture.low", 100)
        self._high_mutex = TrackedLock("fixture.high", 500)

    def climb(self) -> None:
        with self._low_mutex:
            with self._high_mutex:
                pass
