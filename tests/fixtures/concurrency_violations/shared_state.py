"""Seeded violation: shared attribute written with no common guard."""

import threading


class RacyCounter:
    """A worker thread and the main path both write ``count`` unlocked."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.count = 0
        self._worker = None

    def start(self) -> None:
        self._worker = threading.Thread(target=self._run, daemon=True)
        self._worker.start()

    def _run(self) -> None:
        self.count += 1  # thread side: no lock

    def reset(self) -> None:
        self.count = 0  # main side: no lock either
