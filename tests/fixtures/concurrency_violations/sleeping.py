"""Seeded violations: blocking calls made while holding a lock."""

import queue
import threading
import time


class SleepyWorker:
    """Sleeps and waits unboundedly with its mutex held."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._work_queue = queue.Queue()
        self._done = threading.Event()
        self.processed = 0

    def nap_under_lock(self) -> None:
        with self._mutex:
            time.sleep(0.5)

    def wait_forever(self) -> None:
        with self._mutex:
            self._done.wait()

    def drain_one(self) -> None:
        with self._mutex:
            item = self._work_queue.get()
            self.processed += bool(item)
