"""Seeded violation: manual acquire with a leaking early return."""

import threading


class LeakyGuard:
    """Acquires its mutex manually and forgets to release on one path."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self.value = 0

    def bump(self) -> int:
        self._mutex.acquire()
        self.value += 1
        return self.value  # missing release()

    def balanced(self) -> int:
        self._mutex.acquire()
        try:
            return self.value
        finally:
            self._mutex.release()
